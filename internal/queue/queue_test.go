package queue

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

func newQueue(t *testing.T, cfg Config) (*storage.DB, *Queue) {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m := NewManager(db)
	t.Cleanup(m.Close)
	q, err := m.Create("in", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, q
}

func ev(n int) *event.Event {
	return event.New("test", map[string]any{"n": n})
}

func TestEnqueueDequeueAck(t *testing.T) {
	_, q := newQueue(t, Config{})
	id, err := q.Enqueue(ev(1), EnqueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	msg, ok, err := q.Dequeue("c1")
	if err != nil || !ok {
		t.Fatalf("dequeue: %v %v", ok, err)
	}
	if v, _ := msg.Event.Get("n"); !val.Equal(v, val.Int(1)) {
		t.Errorf("payload n = %v", v)
	}
	if msg.Attempt != 1 {
		t.Errorf("attempt = %d", msg.Attempt)
	}
	// Queue drained while inflight.
	if _, ok, _ := q.Dequeue("c1"); ok {
		t.Error("message delivered twice")
	}
	if err := q.Ack(msg.Receipt); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Ready != 0 || st.Inflight != 0 || st.Dead != 0 {
		t.Errorf("stats after ack = %+v", st)
	}
	// Double ack fails.
	if err := q.Ack(msg.Receipt); err == nil {
		t.Error("double ack accepted")
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	_, q := newQueue(t, Config{})
	for i := 1; i <= 5; i++ {
		q.Enqueue(ev(i), EnqueueOptions{})
	}
	for i := 1; i <= 5; i++ {
		msg, ok, err := q.Dequeue("c")
		if err != nil || !ok {
			t.Fatal(ok, err)
		}
		if v, _ := msg.Event.Get("n"); !val.Equal(v, val.Int(int64(i))) {
			t.Errorf("dequeue %d got n=%v", i, v)
		}
		q.Ack(msg.Receipt)
	}
}

func TestPriorityOrdering(t *testing.T) {
	_, q := newQueue(t, Config{})
	q.Enqueue(ev(1), EnqueueOptions{Priority: 0})
	q.Enqueue(ev(2), EnqueueOptions{Priority: 5})
	q.Enqueue(ev(3), EnqueueOptions{Priority: 5})
	q.Enqueue(ev(4), EnqueueOptions{Priority: 1})
	want := []int64{2, 3, 4, 1}
	for _, w := range want {
		msg, ok, _ := q.Dequeue("c")
		if !ok {
			t.Fatal("drained early")
		}
		if v, _ := msg.Event.Get("n"); !val.Equal(v, val.Int(w)) {
			t.Errorf("want n=%d got %v", w, v)
		}
		q.Ack(msg.Receipt)
	}
}

func TestDelayedVisibility(t *testing.T) {
	_, q := newQueue(t, Config{})
	base := time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)
	now := base
	timeNow = func() time.Time { return now }
	defer func() { timeNow = func() time.Time { return time.Now().UTC() } }()

	q.Enqueue(ev(1), EnqueueOptions{Delay: time.Minute})
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("delayed message visible immediately")
	}
	now = base.Add(2 * time.Minute)
	msg, ok, _ := q.Dequeue("c")
	if !ok {
		t.Fatal("delayed message never became visible")
	}
	q.Ack(msg.Receipt)
}

func TestVisibilityTimeoutRedelivery(t *testing.T) {
	base := time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)
	now := base
	timeNow = func() time.Time { return now }
	defer func() { timeNow = func() time.Time { return time.Now().UTC() } }()

	_, q := newQueue(t, Config{VisibilityTimeout: 10 * time.Second, MaxAttempts: 3})
	q.Enqueue(ev(1), EnqueueOptions{})
	msg1, ok, _ := q.Dequeue("crashy")
	if !ok {
		t.Fatal("no delivery")
	}
	// Consumer "crashes": no ack. After the timeout it redelivers.
	now = now.Add(11 * time.Second)
	msg2, ok, _ := q.Dequeue("healthy")
	if !ok {
		t.Fatal("no redelivery after visibility timeout")
	}
	if msg2.Attempt != 2 {
		t.Errorf("redelivery attempt = %d, want 2", msg2.Attempt)
	}
	// The crashed consumer's receipt is now stale.
	if err := q.Ack(msg1.Receipt); err != ErrStaleReceipt {
		t.Errorf("stale ack error = %v", err)
	}
	// Healthy consumer acks fine.
	if err := q.Ack(msg2.Receipt); err != nil {
		t.Fatal(err)
	}
}

func TestNackAndDeadLetter(t *testing.T) {
	_, q := newQueue(t, Config{MaxAttempts: 2})
	q.Enqueue(ev(42), EnqueueOptions{})
	m1, _, _ := q.Dequeue("c")
	if err := q.Nack(m1.Receipt, 0); err != nil {
		t.Fatal(err)
	}
	m2, ok, _ := q.Dequeue("c")
	if !ok || m2.Attempt != 2 {
		t.Fatalf("second delivery: ok=%v attempt=%d", ok, m2.Attempt)
	}
	// Attempt 2 of 2: nack dead-letters.
	if err := q.Nack(m2.Receipt, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("dead message delivered")
	}
	st := q.Stats()
	if st.Dead != 1 {
		t.Errorf("dead = %d", st.Dead)
	}
	ids, evs, err := q.DeadLetters()
	if err != nil || len(ids) != 1 {
		t.Fatalf("dead letters: %v %v", ids, err)
	}
	if v, _ := evs[0].Get("n"); !val.Equal(v, val.Int(42)) {
		t.Errorf("dead letter payload = %v", v)
	}
	// Redrive restores delivery with a fresh budget.
	if err := q.Redrive(ids[0]); err != nil {
		t.Fatal(err)
	}
	m3, ok, _ := q.Dequeue("c")
	if !ok || m3.Attempt != 1 {
		t.Fatalf("redriven delivery: ok=%v attempt=%d", ok, m3.Attempt)
	}
	q.Ack(m3.Receipt)
	if err := q.Redrive(999); err == nil {
		t.Error("redrive of missing message accepted")
	}
}

func TestTransactionalEnqueue(t *testing.T) {
	db, q := newQueue(t, Config{})
	s, _ := storage.NewSchema("orders", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
	}, "id")
	db.CreateTable(s)

	// Extended INSERT: order row + message commit atomically.
	txn := db.Begin()
	txn.Insert("orders", map[string]val.Value{"id": val.Int(1)})
	if _, err := q.EnqueueTx(txn, ev(1), EnqueueOptions{}); err != nil {
		t.Fatal(err)
	}
	// Before commit: nothing deliverable.
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("uncommitted message delivered")
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := q.Dequeue("c"); !ok {
		t.Error("committed message not delivered")
	}

	// Rollback discards the message.
	txn2 := db.Begin()
	txn2.Insert("orders", map[string]val.Value{"id": val.Int(2)})
	q.EnqueueTx(txn2, ev(2), EnqueueOptions{})
	txn2.Rollback()
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("rolled-back message delivered")
	}

	// Failed transaction (duplicate order PK) also discards the message.
	txn3 := db.Begin()
	txn3.Insert("orders", map[string]val.Value{"id": val.Int(1)})
	q.EnqueueTx(txn3, ev(3), EnqueueOptions{})
	if _, err := txn3.Commit(); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("message from failed txn delivered")
	}
}

func TestDurableQueueRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(db)
	q, err := m.Create("in", Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		q.Enqueue(ev(i), EnqueueOptions{})
	}
	// One message is inflight at "crash" time.
	inflightMsg, _, _ := q.Dequeue("gone")
	_ = inflightMsg
	db.Close()

	db2, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2 := NewManager(db2)
	defer m2.Close()
	q2, err := m2.Open("in", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// All five come back: the inflight one is redelivered because its
	// consumer died with the old process.
	seen := map[int64]bool{}
	for i := 0; i < 5; i++ {
		msg, ok, err := q2.Dequeue("c")
		if err != nil || !ok {
			t.Fatalf("recovery dequeue %d: ok=%v err=%v", i, ok, err)
		}
		n, _ := msg.Event.Get("n")
		nv, _ := n.AsInt()
		if seen[nv] {
			t.Errorf("duplicate n=%d", nv)
		}
		seen[nv] = true
		q2.Ack(msg.Receipt)
	}
	if _, ok, _ := q2.Dequeue("c"); ok {
		t.Error("extra message after recovery")
	}
	// New enqueues avoid ID collisions with recovered messages.
	id, err := q2.Enqueue(ev(99), EnqueueOptions{})
	if err != nil {
		t.Fatalf("post-recovery enqueue: %v", err)
	}
	if id <= 5 {
		t.Errorf("post-recovery id = %d, should exceed recovered ids", id)
	}
}

func TestWaitDequeue(t *testing.T) {
	_, q := newQueue(t, Config{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var got *Msg
	go func() {
		defer wg.Done()
		msg, ok, err := q.WaitDequeue("c", 5*time.Second, done)
		if err != nil || !ok {
			t.Errorf("WaitDequeue: ok=%v err=%v", ok, err)
			return
		}
		got = msg
	}()
	time.Sleep(20 * time.Millisecond)
	q.Enqueue(ev(7), EnqueueOptions{})
	wg.Wait()
	if got == nil {
		t.Fatal("no message")
	}
	if v, _ := got.Event.Get("n"); !val.Equal(v, val.Int(7)) {
		t.Errorf("n = %v", v)
	}
	// Timeout path.
	start := time.Now()
	_, ok, err := q.WaitDequeue("c", 30*time.Millisecond, nil)
	if ok || err != nil {
		t.Errorf("timeout WaitDequeue: ok=%v err=%v", ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before timeout")
	}
	// Done-channel path.
	close(done)
	if _, ok, _ := q.WaitDequeue("c", time.Hour, done); ok {
		t.Error("closed done should end wait")
	}
}

func TestConcurrentConsumersNoDuplicates(t *testing.T) {
	_, q := newQueue(t, Config{})
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := q.Enqueue(ev(i), EnqueueOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := map[int64]int{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msg, ok, err := q.Dequeue("w")
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				v, _ := msg.Event.Get("n")
				nv, _ := v.AsInt()
				mu.Lock()
				seen[nv]++
				mu.Unlock()
				if err := q.Ack(msg.Receipt); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("message %d delivered %d times", k, c)
		}
	}
}

func TestForeignInsertBecomesMessage(t *testing.T) {
	// A row INSERTed directly into the backing table (e.g. by a foreign
	// system's transaction) is a deliverable message.
	db, q := newQueue(t, Config{})
	payload := event.Encode(nil, ev(123))
	_, err := db.Insert(TableName("in"), map[string]val.Value{
		"id":          val.Int(1000),
		"pri":         val.Int(0),
		"visible_at":  val.Int(0),
		"attempts":    val.Int(0),
		"state":       val.String("ready"),
		"enqueued_at": val.Int(timeNow().UnixNano()),
		"payload":     val.Bytes(payload),
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, ok, err := q.Dequeue("c")
	if err != nil || !ok {
		t.Fatalf("foreign insert not delivered: %v %v", ok, err)
	}
	if v, _ := msg.Event.Get("n"); !val.Equal(v, val.Int(123)) {
		t.Errorf("n = %v", v)
	}
	// Later internal enqueues must not collide with the foreign ID.
	id, err := q.Enqueue(ev(1), EnqueueOptions{})
	if err != nil || id <= 1000 {
		t.Errorf("id after foreign insert = %d, %v", id, err)
	}
}

func TestManagerOpenErrors(t *testing.T) {
	db, _ := storage.Open(storage.Options{})
	defer db.Close()
	m := NewManager(db)
	defer m.Close()
	if _, err := m.Open("nope", Config{}); err == nil {
		t.Error("open of missing queue accepted")
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("Get of missing queue ok")
	}
	q, _ := m.Create("a", Config{})
	if q2, ok := m.Get("a"); !ok || q2 != q {
		t.Error("Get should return the attached queue")
	}
	if _, err := m.Create("a", Config{}); err == nil {
		t.Error("duplicate create accepted")
	}
	if err := q.Nack(Receipt{Queue: "a", ID: 99}, 0); err != ErrStaleReceipt {
		t.Errorf("nack unknown receipt: %v", err)
	}
}

func TestNilEventRejected(t *testing.T) {
	_, q := newQueue(t, Config{})
	if _, err := q.Enqueue(nil, EnqueueOptions{}); err == nil {
		t.Error("nil event accepted")
	}
}

// --- batched staging (group commit) -------------------------------------

func TestEnqueueBatchSingleCommit(t *testing.T) {
	db, q := newQueue(t, Config{})
	evs := make([]*event.Event, 16)
	for i := range evs {
		evs[i] = ev(i)
	}
	seq0 := db.Seq()
	ids, err := q.EnqueueBatch(evs, EnqueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(evs) {
		t.Fatalf("staged %d ids, want %d", len(ids), len(evs))
	}
	if got := db.Seq() - seq0; got != 1 {
		t.Errorf("batch of %d took %d commits, want 1", len(evs), got)
	}
	for i := range ids {
		if i > 0 && ids[i] != ids[i-1]+1 {
			t.Errorf("ids not sequential: %v", ids)
			break
		}
	}
	for i := 0; i < len(evs); i++ {
		msg, ok, err := q.Dequeue("c")
		if err != nil || !ok {
			t.Fatalf("dequeue %d: ok=%v err=%v", i, ok, err)
		}
		if err := q.Ack(msg.Receipt); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("extra message staged")
	}
}

func TestEnqueueBatchAtomicOnError(t *testing.T) {
	db, q := newQueue(t, Config{})
	calls := 0
	remove := db.OnBefore(TableName("in"), func(*storage.Change) error {
		calls++
		if calls == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	defer remove()
	evs := []*event.Event{ev(1), ev(2), ev(3), ev(4)}
	if _, err := q.EnqueueBatch(evs, EnqueueOptions{}); err == nil {
		t.Fatal("vetoed batch should fail")
	}
	if st := q.Stats(); st.Ready != 0 {
		t.Errorf("failed batch left %d staged messages", st.Ready)
	}
	if _, ok, _ := q.Dequeue("c"); ok {
		t.Error("failed batch delivered a message")
	}
}

func TestEnqueueBatchEmpty(t *testing.T) {
	_, q := newQueue(t, Config{})
	ids, err := q.EnqueueBatch(nil, EnqueueOptions{})
	if err != nil || ids != nil {
		t.Errorf("empty batch: ids=%v err=%v", ids, err)
	}
}

func TestEnqueueGroupSingleCommitSharedPayload(t *testing.T) {
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m := NewManager(db)
	t.Cleanup(m.Close)
	var targets []Target
	for i := 0; i < 4; i++ {
		q, err := m.Create(fmt.Sprintf("t%d", i), Config{})
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, Target{Queue: q, Opts: EnqueueOptions{Priority: i}})
	}
	seq0 := db.Seq()
	if err := EnqueueGroup(ev(7), targets); err != nil {
		t.Fatal(err)
	}
	if got := db.Seq() - seq0; got != 1 {
		t.Errorf("group staging took %d commits, want 1", got)
	}
	for i, tg := range targets {
		msg, ok, err := tg.Queue.Dequeue("c")
		if err != nil || !ok {
			t.Fatalf("queue %d: ok=%v err=%v", i, ok, err)
		}
		if msg.Priority != i {
			t.Errorf("queue %d: priority %d, want %d", i, msg.Priority, i)
		}
		if v, _ := msg.Event.Get("n"); !val.Equal(v, val.Int(7)) {
			t.Errorf("queue %d: wrong payload %v", i, msg.Event)
		}
	}
}

func TestEnqueueGroupRejectsMixedDatabases(t *testing.T) {
	_, q1 := newQueue(t, Config{})
	_, q2 := newQueue(t, Config{})
	err := EnqueueGroup(ev(1), []Target{{Queue: q1}, {Queue: q2}})
	if err == nil {
		t.Fatal("mixed-database group should fail")
	}
	if st := q1.Stats(); st.Ready != 0 {
		t.Error("mixed-database group staged into first queue anyway")
	}
}

func TestEnqueueGroupAtomicOnVeto(t *testing.T) {
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	m := NewManager(db)
	t.Cleanup(m.Close)
	ok1, err := m.Create("ok1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := m.Create("bad", Config{})
	if err != nil {
		t.Fatal(err)
	}
	remove := db.OnBefore(TableName("bad"), func(*storage.Change) error {
		return fmt.Errorf("full")
	})
	defer remove()
	err = EnqueueGroup(ev(1), []Target{{Queue: ok1}, {Queue: bad}})
	if err == nil {
		t.Fatal("vetoed group should fail")
	}
	if st := ok1.Stats(); st.Ready != 0 {
		t.Error("vetoed group staged into the healthy queue (not atomic)")
	}
}
