package gateway

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eventdb/internal/core"
	"eventdb/internal/server"
	"eventdb/internal/storage"
	"eventdb/internal/val"
	"eventdb/internal/vfs"
	"eventdb/internal/ws"
)

// startStack spins up a real eventdb server plus a gateway in front of
// it, returning the gateway's HTTP base URL.
func startStack(t *testing.T, tokens []string) (*httptest.Server, *Gateway) {
	t.Helper()
	eng, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := server.StartConfig(eng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	gw := New(Config{Backend: srv.Addr(), Tokens: tokens})
	t.Cleanup(func() { gw.Close() })
	hs := httptest.NewServer(gw)
	t.Cleanup(hs.Close)
	return hs, gw
}

func postJSON(t *testing.T, url, token, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestPubAndStats(t *testing.T) {
	hs, _ := startStack(t, nil)
	resp, body := postJSON(t, hs.URL+"/v1/pub", "", `{"type":"tick","attrs":{"n":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pub: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("pub body %q: %v", body, err)
	}

	// Array form.
	resp, body = postJSON(t, hs.URL+"/v1/pub", "",
		`[{"type":"tick","attrs":{"n":2}},{"type":"tick","attrs":{"n":3}}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pub array: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || out.Accepted != 2 {
		t.Fatalf("pub array body %q (err %v)", body, err)
	}

	resp, body = postJSON(t, hs.URL+"/v1/pub", "", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json pub: %d %s", resp.StatusCode, body)
	}

	r2, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r2.StatusCode)
	}
	var st map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatalf("stats not json: %v", err)
	}
	if _, ok := st["sent"]; !ok {
		t.Fatalf("stats missing sent: %v", st)
	}
}

func TestSelectRoundTrip(t *testing.T) {
	hs, _ := startStack(t, nil)
	// No tables exist; a select against a missing table maps to 404.
	resp, body := postJSON(t, hs.URL+"/v1/select", "", `{"table":"missing"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("select missing table: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "notable") {
		t.Fatalf("error body lost the code: %s", body)
	}
	// Malformed spec JSON is rejected client-side with 400.
	resp, body = postJSON(t, hs.URL+"/v1/select", "", `{oops`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d %s", resp.StatusCode, body)
	}
}

func TestQStatsNotFound(t *testing.T) {
	hs, _ := startStack(t, nil)
	resp, err := http.Get(hs.URL + "/v1/qstats?queue=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("qstats on missing queue: %d", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/qstats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("qstats without queue: %d", resp.StatusCode)
	}
}

func TestAuth(t *testing.T) {
	hs, _ := startStack(t, []string{"sekrit", "other"})
	// No token → 401 with a challenge.
	resp, _ := postJSON(t, hs.URL+"/v1/pub", "", `{"type":"t","attrs":{}}`)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	// Wrong token → 401.
	resp, _ = postJSON(t, hs.URL+"/v1/pub", "wrong", `{"type":"t","attrs":{}}`)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", resp.StatusCode)
	}
	// Either accepted token → 200.
	for _, tok := range []string{"sekrit", "other"} {
		resp, body := postJSON(t, hs.URL+"/v1/pub", tok, `{"type":"t","attrs":{}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("token %q: %d %s", tok, resp.StatusCode, body)
		}
	}
	// /healthz stays open.
	r, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
}

func TestWebSocketSubscription(t *testing.T) {
	hs, _ := startStack(t, []string{"sekrit"})
	base := "ws" + strings.TrimPrefix(hs.URL, "http")

	// Upgrade without a token is refused before the upgrade completes.
	if _, err := ws.Dial(base+"/v1/sub?id=s1", nil); err == nil {
		t.Fatal("unauthenticated upgrade succeeded")
	}

	// Browsers cannot set Authorization on upgrades; ?token= works.
	wc, err := ws.Dial(base+"/v1/sub?id=s1&filter="+escape("n > 1")+"&token=sekrit", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	// Publish through the HTTP plane; only the matching event arrives.
	resp, body := postJSON(t, hs.URL+"/v1/pub", "sekrit",
		`[{"type":"tick","attrs":{"n":1}},{"type":"tick","attrs":{"n":5}}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pub: %d %s", resp.StatusCode, body)
	}

	wc.NetConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	op, p, err := wc.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != ws.OpText {
		t.Fatalf("opcode %d", op)
	}
	var ev struct {
		Type  string         `json:"type"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(p, &ev); err != nil {
		t.Fatalf("push not json: %v (%q)", err, p)
	}
	if ev.Type != "tick" || ev.Attrs["n"] != float64(5) {
		t.Fatalf("wrong event pushed: %s", p)
	}
}

func TestWebSocketBadFilter(t *testing.T) {
	hs, _ := startStack(t, nil)
	base := "ws" + strings.TrimPrefix(hs.URL, "http")
	wc, err := ws.Dial(base+"/v1/sub?id=s1&filter="+escape("n >>> !"), nil)
	if err != nil {
		t.Fatal(err) // upgrade succeeds; refusal arrives as a close frame
	}
	defer wc.Close()
	wc.NetConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err = wc.ReadMessage()
	if err == nil {
		t.Fatal("bad filter produced no close")
	}
}

// escape is a minimal query-escaper for test filters.
func escape(s string) string {
	r := strings.NewReplacer(" ", "%20", ">", "%3E", "!", "%21")
	return r.Replace(s)
}

// TestReadyz drives the readiness probe through its three answers: 200
// on a healthy writable leader, 503 while the storage layer is
// degraded, and 503 on a read-only follower — with the backend's
// health snapshot as the body every time.
func TestReadyz(t *testing.T) {
	fsys := vfs.NewFaulty(nil)
	eng, err := core.Open(core.Config{Dir: t.TempDir(), SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := server.StartConfig(eng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	gw := New(Config{Backend: srv.Addr()})
	t.Cleanup(func() { gw.Close() })
	hs := httptest.NewServer(gw)
	t.Cleanup(hs.Close)

	ready := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return resp.StatusCode, body
	}

	if code, body := ready(); code != http.StatusOK || body["role"] != "leader" {
		t.Fatalf("healthy leader: %d %v", code, body)
	}

	// Fail-stop the storage layer: readiness must flip to 503 while
	// liveness (/healthz) stays 200 — the process is up, just not ready.
	fsys.FailSyncsAfter(0, errors.New("injected EIO"))
	schema, err := storage.NewSchema("probe", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DB.CreateTable(schema); err == nil {
		t.Fatal("create table on broken device unexpectedly succeeded")
	}
	if deg, _ := eng.Degraded(); !deg {
		t.Fatal("engine not degraded")
	}
	if code, body := ready(); code != http.StatusServiceUnavailable || body["degraded"] != true {
		t.Fatalf("degraded: %d %v", code, body)
	}
	r, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during degraded: %d, want 200 (liveness, not readiness)", r.StatusCode)
	}

	fsys.Heal()
	if err := eng.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if code, _ := ready(); code != http.StatusOK {
		t.Fatalf("after recover: %d", code)
	}

	// A follower is alive but not ready for writes either.
	eng.SetReadOnly(true)
	if code, body := ready(); code != http.StatusServiceUnavailable || body["role"] != "follower" {
		t.Fatalf("follower: %d %v", code, body)
	}
}
