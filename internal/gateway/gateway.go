// Package gateway bridges web clients to an eventdb server: HTTP POST
// for the request/reply verbs (publish, select, stats) and WebSocket
// for the push plane (subscriptions), with bearer-token auth in front.
// It is the million-connection story's edge tier — browsers and
// curl-class clients speak commodity HTTP/WebSocket to the gateway,
// and the gateway speaks the negotiated binary frame protocol
// (HELLO 2) to the backend over a small number of multiplexed TCP
// connections.
//
//	POST /v1/pub     body: one event JSON object, or an array of them
//	POST /v1/select  body: a QuerySpec JSON object → result JSON
//	GET  /v1/stats   → connection stats JSON (the shared backend conn)
//	GET  /v1/qstats?queue=<name> → queue stats JSON
//	GET  /v1/sub?id=<id>&filter=<expr> → WebSocket: event JSON per message
//	GET  /healthz    → liveness + backend reachability (no auth)
//	GET  /readyz     → readiness for traffic (no auth): 200 only when
//	                   the backend is reachable, a writable leader, and
//	                   not degraded; 503 otherwise, with the backend's
//	                   health snapshot as the body either way
//
// Every endpoint except /healthz and /readyz requires "Authorization:
// Bearer <token>" when Config.Tokens is non-empty.
package gateway

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"eventdb/client"
	"eventdb/internal/event"
	"eventdb/internal/ws"
)

// Config configures a Gateway.
type Config struct {
	// Backend is the eventdb server address ("host:port").
	Backend string
	// Tokens are the accepted bearer tokens. Empty means no auth —
	// every request is allowed (development mode).
	Tokens []string
	// SubBuffer sizes each WebSocket subscription's client-side event
	// buffer (default 256). A browser that cannot keep up loses pushes
	// rather than stalling the backend connection.
	SubBuffer int
	// MaxBody caps request bodies (default 16 MiB, matching the
	// backend's frame limit).
	MaxBody int64
	// Dial overrides how backend connections are made (testing).
	Dial func() (*client.Conn, error)
}

// Gateway is an http.Handler bridging HTTP/WebSocket to one eventdb
// backend.
type Gateway struct {
	cfg    Config
	tokens [][32]byte // sha256 of each accepted token
	mux    *http.ServeMux

	mu     sync.Mutex
	shared *client.Conn // lazily dialed request/reply connection
}

// New builds a Gateway.
func New(cfg Config) *Gateway {
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 16 << 20
	}
	if cfg.Dial == nil {
		backend := cfg.Backend
		sub := cfg.SubBuffer
		cfg.Dial = func() (*client.Conn, error) {
			return client.Dial(backend, client.WithBinary(), client.WithSubBuffer(sub))
		}
	}
	g := &Gateway{cfg: cfg}
	for _, t := range cfg.Tokens {
		g.tokens = append(g.tokens, sha256.Sum256([]byte(t)))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/v1/pub", g.auth(g.handlePub))
	mux.HandleFunc("/v1/select", g.auth(g.handleSelect))
	mux.HandleFunc("/v1/stats", g.auth(g.handleStats))
	mux.HandleFunc("/v1/qstats", g.auth(g.handleQStats))
	mux.HandleFunc("/v1/sub", g.auth(g.handleSub))
	g.mux = mux
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Close drops the shared backend connection.
func (g *Gateway) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shared != nil {
		g.shared.Close()
		g.shared = nil
	}
	return nil
}

// --- auth -------------------------------------------------------------

// auth wraps a handler with bearer-token verification. Tokens compare
// in constant time over a digest, so neither the comparison nor the
// token length leaks timing.
func (g *Gateway) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if len(g.tokens) == 0 {
			next(w, r)
			return
		}
		raw := r.Header.Get("Authorization")
		token, ok := strings.CutPrefix(raw, "Bearer ")
		if !ok {
			// WebSocket clients (browsers) cannot set headers on the
			// upgrade request; accept the token as a query parameter
			// there.
			token = r.URL.Query().Get("token")
		}
		if token == "" || !g.tokenOK(token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="eventdb"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next(w, r)
	}
}

func (g *Gateway) tokenOK(token string) bool {
	digest := sha256.Sum256([]byte(token))
	ok := false
	for i := range g.tokens {
		// No early exit: every candidate is compared so match position
		// does not leak either.
		if subtle.ConstantTimeCompare(digest[:], g.tokens[i][:]) == 1 {
			ok = true
		}
	}
	return ok
}

// --- backend connection pool (of one) ---------------------------------

// conn returns the shared request/reply backend connection, dialing it
// on first use and redialing after a failure.
func (g *Gateway) conn() (*client.Conn, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shared != nil && g.shared.Err() == nil {
		return g.shared, nil
	}
	if g.shared != nil {
		g.shared.Close()
		g.shared = nil
	}
	c, err := g.cfg.Dial()
	if err != nil {
		return nil, err
	}
	g.shared = c
	return c, nil
}

// --- plumbing ---------------------------------------------------------

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// backendError maps a backend refusal onto an HTTP status using the
// server's stable error codes; transport failures become 502.
func backendError(w http.ResponseWriter, err error) {
	var serr *client.Error
	if !errors.As(err, &serr) {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	status := http.StatusBadRequest
	switch serr.Code {
	case "badargs", "badjson", "badspec", "unknown":
		status = http.StatusBadRequest
	case "notable", "noqueue", "nosub", "notrig", "nowatch", "nopattern", "noreceipt":
		status = http.StatusNotFound
	case "dup", "conflict", "aborted":
		status = http.StatusConflict
	case "toobig":
		status = http.StatusRequestEntityTooLarge
	case "limit":
		status = http.StatusTooManyRequests
	case "readonly":
		status = http.StatusForbidden
	case "degraded":
		// The storage layer fail-stopped; the node serves reads but
		// refuses writes until an operator RECOVER. Retryable elsewhere.
		status = http.StatusServiceUnavailable
	case "notdurable":
		status = http.StatusPreconditionFailed
	case "internal":
		status = http.StatusBadGateway
	}
	httpError(w, status, serr.Error())
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// --- handlers ---------------------------------------------------------

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backend := "up"
	if c, err := g.conn(); err != nil {
		backend = "down"
	} else if err := c.Ping(); err != nil {
		backend = "down"
	}
	writeJSON(w, http.StatusOK, []byte(fmt.Sprintf(`{"ok":true,"backend":%q}`, backend)))
}

// handleReadyz is the load-balancer readiness probe: 200 only when the
// backend answers HEALTH, is a writable leader, and is not degraded —
// i.e. this gateway can usefully take writes right now. Everything
// else is 503 so traffic drains to a healthy peer. Unlike /healthz
// (liveness: "the process is up"), readiness flips during failover and
// degraded mode by design. The body is the backend's health snapshot
// so operators see *why* from the probe itself.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c, err := g.conn()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "backend unavailable: "+err.Error())
		return
	}
	body, err := c.HealthJSON()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "backend health: "+err.Error())
		return
	}
	var h client.Health
	if err := json.Unmarshal(body, &h); err != nil {
		httpError(w, http.StatusServiceUnavailable, "bad health snapshot: "+err.Error())
		return
	}
	status := http.StatusOK
	if h.Role != "leader" || h.Degraded {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handlePub accepts one event object or an array of events.
func (g *Gateway) handlePub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > g.cfg.MaxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	c, err := g.conn()
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unavailable: "+err.Error())
		return
	}
	trimmed := strings.TrimSpace(string(body))
	var accepted int
	if strings.HasPrefix(trimmed, "[") {
		var raws []json.RawMessage
		if err := json.Unmarshal(body, &raws); err != nil {
			httpError(w, http.StatusBadRequest, "bad event array: "+err.Error())
			return
		}
		evs := make([]*event.Event, len(raws))
		for i, raw := range raws {
			ev, err := event.UnmarshalJSONEvent(raw)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("event %d: %v", i, err))
				return
			}
			evs[i] = ev
		}
		accepted, err = c.PublishBatch(evs)
	} else {
		if !json.Valid(body) {
			httpError(w, http.StatusBadRequest, "bad event json")
			return
		}
		accepted, err = c.PublishRaw(body)
	}
	if err != nil {
		backendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, []byte(fmt.Sprintf(`{"accepted":%d}`, accepted)))
}

func (g *Gateway) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > g.cfg.MaxBody {
		httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	c, err := g.conn()
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unavailable: "+err.Error())
		return
	}
	res, err := c.SelectRaw(body)
	if err != nil {
		var serr *client.Error
		if !errors.As(err, &serr) && strings.Contains(err.Error(), "bad query spec") {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		backendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	c, err := g.conn()
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unavailable: "+err.Error())
		return
	}
	body, err := c.StatsJSON()
	if err != nil {
		backendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (g *Gateway) handleQStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("queue")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing queue parameter")
		return
	}
	if strings.ContainsAny(name, " \r\n") {
		httpError(w, http.StatusBadRequest, "bad queue name")
		return
	}
	c, err := g.conn()
	if err != nil {
		httpError(w, http.StatusBadGateway, "backend unavailable: "+err.Error())
		return
	}
	body, err := c.QueueStatsJSON(name)
	if err != nil {
		backendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSub upgrades to WebSocket and streams subscription pushes, one
// event JSON object per text message. Each subscriber gets a dedicated
// backend connection: subscriptions are connection-scoped server-side,
// and one slow browser must not interleave with another's stream.
func (g *Gateway) handleSub(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		id = "ws"
	}
	filter := r.URL.Query().Get("filter")
	if strings.ContainsAny(id, " \r\n") || strings.ContainsAny(filter, "\r\n") {
		httpError(w, http.StatusBadRequest, "bad id or filter")
		return
	}
	wc, err := ws.Accept(w, r)
	if err != nil {
		return // Accept already answered
	}
	defer wc.Close()
	bc, err := g.cfg.Dial()
	if err != nil {
		wc.WriteClose(ws.CloseInternalError, "backend unavailable")
		return
	}
	defer bc.Close()
	sub, err := bc.Subscribe(id, filter, g.cfg.SubBuffer)
	if err != nil {
		reason := err.Error()
		var serr *client.Error
		if errors.As(err, &serr) {
			reason = serr.Error()
		}
		wc.WriteClose(ws.ClosePolicyViolation, reason)
		return
	}
	// Reader goroutine: absorbs pings (answered inside ReadMessage) and
	// detects the peer's close/disconnect, unblocking the pump below by
	// closing the backend connection.
	clientGone := make(chan struct{})
	go func() {
		defer close(clientGone)
		for {
			if _, _, err := wc.ReadMessage(); err != nil {
				return
			}
			// Inbound data messages have no meaning on a subscription
			// stream; tolerate and discard them.
		}
	}()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				wc.WriteClose(ws.CloseGoingAway, "backend connection lost")
				return
			}
			data, err := event.MarshalJSONEvent(ev)
			if err != nil {
				continue
			}
			if err := wc.WriteMessage(ws.OpText, data); err != nil {
				return
			}
		case <-clientGone:
			return
		}
	}
}
