// Package core wires the substrates into the paper's event-driven
// architecture: capture (triggers, journal mining, query differs) →
// staging (queues) → evaluation (rules, pub/sub, CEP, continuous
// queries, analytics/models) → consumption (dispatch, forwarding,
// external services), with security and auditing across every stage.
//
// The Engine is the deliverable a downstream user adopts; the root
// package eventdb re-exports it as the public API.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"eventdb/internal/audit"
	"eventdb/internal/columnar"
	"eventdb/internal/event"
	"eventdb/internal/journal"
	"eventdb/internal/metrics"
	"eventdb/internal/pubsub"
	"eventdb/internal/query"
	"eventdb/internal/queue"
	"eventdb/internal/rules"
	"eventdb/internal/security"
	"eventdb/internal/storage"
	"eventdb/internal/trigger"
	"eventdb/internal/vfs"
)

// Config configures Open.
type Config struct {
	// Dir enables durability (WAL, recoverable queues/tables). Empty
	// means fully in-memory.
	Dir string
	// SyncEvery controls WAL fsync cadence (0 = batched by the OS).
	SyncEvery int
	// Secure installs a deny-by-default ACL guard; when false, all
	// principal-checked operations are allowed.
	Secure bool
	// AuditTable, when non-empty, records engine operations to an audit
	// trail table of this name.
	AuditTable string
	// FS is the filesystem every durability path (WAL, columnar
	// segments) writes through. Nil means the real one; tests inject
	// vfs.Faulty to drive disk-failure scenarios.
	FS vfs.FS

	// ShedHighWater arms queue-depth overload shedding on a sharded
	// engine: when aggregate shard occupancy exceeds this fraction of
	// total capacity (0 < f <= 1), Overloaded reports true and the
	// server sheds low-priority publishers with an error instead of
	// blocking them. 0 disables.
	ShedHighWater float64
	// ShedMemoryBytes arms memory overload shedding: when the Go heap
	// in use exceeds this many bytes, Overloaded reports true. The heap
	// probe is cached for ~250ms so checking is cheap on the hot path.
	// 0 disables.
	ShedMemoryBytes uint64

	// Shards enables the asynchronous sharded ingest pipeline: events
	// are hash-partitioned by shard key across this many workers, each
	// draining a bounded buffer through the rules→pub/sub flow. Events
	// sharing a key process in arrival order on a single shard. 0 (the
	// default) keeps Ingest fully synchronous on the caller's
	// goroutine, as before. With shards, rule actions and subscription
	// handlers run on shard goroutines and must be safe for concurrent
	// use across shards; a handler that re-ingests directly should use
	// IngestSync (or DropOnFull) — under BlockOnFull, a blocking
	// Ingest from a shard goroutine into its own full shard would
	// deadlock. The engine's own capture paths (triggers, watched
	// queries, journal tail) are re-entrancy-safe.
	Shards int
	// ShardBuffer is each shard's bounded queue capacity (default 1024).
	ShardBuffer int
	// Backpressure selects what a full shard buffer does to publishers:
	// BlockOnFull (default) blocks until the shard drains; DropOnFull
	// drops the event and counts it in pipeline.shard<N>.drops.
	Backpressure Backpressure
	// ShardKey derives the partition key from an event; nil partitions
	// by event type.
	ShardKey func(*event.Event) string

	// ColumnarDisabled turns off the columnar history store. By default
	// every engine seals committed table history into immutable column
	// segments that serve full-scan queries and REPLAY backfill.
	ColumnarDisabled bool
	// ColumnarSealRows overrides the pending-row threshold at which a
	// table's history is sealed into a segment (default 8192).
	ColumnarSealRows int
	// ColumnarSealInterval overrides the background sealer cadence
	// (default 200ms).
	ColumnarSealInterval time.Duration

	// CEPBuffer is each shard's pattern-feed queue capacity on a
	// sharded engine (default 4096). A full queue drops events for
	// pattern purposes only, counted in cep.feed.drops.
	CEPBuffer int
	// CEPAdvanceInterval is the cadence of the clock that expires
	// partial pattern matches on quiet streams (default 500ms).
	CEPAdvanceInterval time.Duration
	// CEPMaxInstances caps live partial pattern matches across all
	// registered patterns (default 1<<20); oldest are dropped beyond it.
	CEPMaxInstances int
}

// Engine is the assembled event-processing platform.
type Engine struct {
	DB       *storage.DB
	Queues   *queue.Manager
	Triggers *trigger.Manager
	Miner    *journal.Miner
	Broker   *pubsub.Broker
	Rules    *rules.Engine
	Metrics  *metrics.Registry
	Guard    *security.Guard
	Trail    *audit.Trail
	// History is the columnar history store (nil when disabled).
	History *columnar.Manager

	ingestCount atomic.Uint64
	closed      atomic.Bool

	// pipeline is the async sharded front door (nil when Shards == 0).
	pipeline *pipeline
	// cep is the shared-automaton pattern registry (see cep.go).
	cep *cepRegistry
	// scratch pools (matcher, publisher) pairs for IngestBatch callers.
	scratch sync.Pool

	// watches is the scheduled watched-query registry (see watch.go).
	watchMu sync.Mutex
	watches map[string]*watchEntry

	// Overload watermarks (see health.go).
	shedHighWater float64
	shedMemBytes  uint64
	memCheckedAt  atomic.Int64  // unix nanos of the last heap probe
	memHeapInUse  atomic.Uint64 // cached heap-in-use from that probe
}

// Open assembles an engine.
func Open(cfg Config) (*Engine, error) {
	db, err := storage.Open(storage.Options{Dir: cfg.Dir, SyncEvery: cfg.SyncEvery, FS: cfg.FS})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		shedHighWater: cfg.ShedHighWater,
		shedMemBytes:  cfg.ShedMemoryBytes,
		DB:            db,
		Queues:        queue.NewManager(db),
		Miner:         journal.NewMiner(db),
		Broker:        pubsub.NewBroker(),
		Rules:         rules.NewEngine(rules.Options{Indexed: true}),
		Metrics:       metrics.NewRegistry(),
		Guard:         security.NewGuard(),
	}
	if !cfg.Secure {
		e.Guard.DefaultAllow = true
	}
	if cfg.AuditTable != "" {
		tr, err := audit.NewTrail(db, cfg.AuditTable)
		if err != nil {
			db.Close()
			return nil, err
		}
		e.Trail = tr
	}
	if !cfg.ColumnarDisabled {
		ccfg := columnar.Config{
			SealRows:     cfg.ColumnarSealRows,
			SealInterval: cfg.ColumnarSealInterval,
			FS:           cfg.FS,
		}
		if cfg.Dir != "" {
			ccfg.Dir = filepath.Join(cfg.Dir, "segments")
		}
		hist, err := columnar.Attach(db, ccfg)
		if err != nil {
			db.Close()
			return nil, err
		}
		e.History = hist
	}
	e.scratch.New = func() any {
		return &batchScratch{m: e.Rules.NewMatcher(), pub: e.Broker.NewPublisher()}
	}
	if cfg.Shards > 0 {
		e.pipeline = newPipeline(e, cfg)
	}
	e.cep = newCEPRegistry(e, cfg)
	// Trigger-captured events flow into the ingest path. The capture
	// variant never blocks: a trigger can fire on a shard goroutine (a
	// rule action writing to a captured table), where a blocking send
	// into that worker's own full buffer would deadlock the pipeline.
	e.Triggers = trigger.NewManager(db, func(ev *event.Event) {
		if err := e.ingestCapture(ev); err != nil {
			e.Metrics.Counter("ingest.errors").Inc()
		}
	})
	return e, nil
}

// batchScratch is a pooled (matcher, publisher) pair so repeated
// IngestBatch calls allocate no per-batch match state.
type batchScratch struct {
	m   *rules.Matcher
	pub *pubsub.Publisher
}

// Close shuts the engine down: stops capture, drains the async
// pipeline's in-flight events, then flushes the WAL.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Watches first: they generate fresh capture events, and everything
	// they produce before the pipeline drain below still evaluates.
	e.stopAllWatches()
	// Drain the pipeline before detaching trigger capture: draining
	// events' rule actions can still write to captured tables, and
	// those cascades must be captured (they evaluate inline via
	// ingestCapture once intake is closed).
	if e.pipeline != nil {
		e.pipeline.close()
	}
	// The pattern feeder drains after the pipeline: events the closing
	// shards evaluated still reach the automaton, and its final matches
	// evaluate inline while triggers are still attached.
	e.cep.close()
	e.Triggers.Close()
	e.Queues.Close()
	if e.History != nil {
		e.History.Close()
	}
	return e.DB.Close()
}

// Compact force-seals pending columnar history into segments — all
// tables when table is empty — and returns per-table segment stats.
// It errors when the columnar store is disabled.
func (e *Engine) Compact(table string) ([]columnar.TableStats, error) {
	if e.History == nil {
		return nil, errors.New("core: columnar history disabled")
	}
	return e.History.Compact(table)
}

// SegmentStats reports per-table columnar store statistics (empty when
// the columnar store is disabled).
func (e *Engine) SegmentStats() []columnar.TableStats {
	if e.History == nil {
		return nil
	}
	return e.History.Stats()
}

// Ingest pushes one event through the evaluation layer: rules fire
// first (highest priority first), then pub/sub delivers to subscribers.
// This is the paper's core flow — events in, valuable information out.
//
// On a synchronous engine (Config.Shards == 0) evaluation completes
// before Ingest returns. With shards, Ingest enqueues to the event's
// shard and returns once accepted; evaluation errors are counted in
// the ingest.errors metric, and Flush/Close drain the backlog.
func (e *Engine) Ingest(ev *event.Event) error {
	_, err := e.IngestCount(ev)
	return err
}

// IngestSync runs the full rules→pub/sub pass on the caller's
// goroutine regardless of pipeline mode.
func (e *Engine) IngestSync(ev *event.Event) error {
	if ev == nil {
		return errors.New("core: nil event")
	}
	if e.closed.Load() {
		return ErrClosed
	}
	_, err := e.ingestSync(ev)
	return err
}

// ingestSync is IngestSync without the closed check, so capture
// cascades during Close's drain still evaluate. It returns the
// delivery count so callers that answer for one event (the wire
// protocol's PUB) don't have to infer it from shared counters.
func (e *Engine) ingestSync(ev *event.Event) (int, error) {
	start := time.Now()
	e.ingestCount.Add(1)
	e.Metrics.Counter("events.in").Inc()
	// Borrow pooled match/publish scratch: the single-event path then
	// evaluates as allocation-free as the batch path. Re-entrant
	// ingestion (a rule action capturing back into the engine) simply
	// borrows another scratch pair.
	sc := e.scratch.Get().(*batchScratch)
	n, err := e.evalEvent(ev, sc.m, sc.pub)
	e.scratch.Put(sc)
	if err != nil {
		return 0, err
	}
	e.cepObserve(-1, ev)
	e.Metrics.Counter("events.delivered").Add(uint64(n))
	e.Metrics.Histogram("ingest.latency").Observe(time.Since(start))
	return n, nil
}

// IngestCount is Ingest returning this event's exact delivery count.
// On an async engine the event is only enqueued, evaluation happens
// later on a shard goroutine, and the count is reported as 0.
func (e *Engine) IngestCount(ev *event.Event) (int, error) {
	if ev == nil {
		return 0, errors.New("core: nil event")
	}
	if e.pipeline != nil {
		return 0, e.pipeline.enqueue(ev)
	}
	if e.closed.Load() {
		return 0, ErrClosed
	}
	return e.ingestSync(ev)
}

// IngestBatch pushes a batch through the evaluation layer, amortizing
// match scratch and metric updates across the batch. With shards, the
// batch is partitioned across workers and events sharing a shard key
// keep their relative order; otherwise the batch evaluates in order on
// the caller's goroutine. Processing stops at the first error.
func (e *Engine) IngestBatch(evs []*event.Event) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.pipeline != nil {
		for _, ev := range evs {
			if ev == nil {
				return errors.New("core: nil event")
			}
			if err := e.pipeline.enqueue(ev); err != nil {
				return err
			}
		}
		return nil
	}
	return e.ingestBatchSync(evs, true)
}

// ingestBatchSync is the shared synchronous batch loop. With
// stopOnError, processing aborts at the first failure and returns it
// (IngestBatch's contract); otherwise failures are counted in
// ingest.errors and the rest of the batch proceeds (the capture
// paths' contract — one bad event must not discard a burst).
func (e *Engine) ingestBatchSync(evs []*event.Event, stopOnError bool) error {
	sc := e.scratch.Get().(*batchScratch)
	defer e.scratch.Put(sc)
	start := time.Now()
	var attempted, delivered uint64
	var firstErr error
	for _, ev := range evs {
		if ev == nil {
			if stopOnError {
				firstErr = errors.New("core: nil event")
				break
			}
			e.Metrics.Counter("ingest.errors").Inc()
			continue
		}
		attempted++
		n, err := e.evalEvent(ev, sc.m, sc.pub)
		if err != nil {
			if stopOnError {
				firstErr = err
				break
			}
			e.Metrics.Counter("ingest.errors").Inc()
			continue
		}
		e.cepObserve(-1, ev)
		delivered += uint64(n)
	}
	// One shared-counter update per batch, not per event — on a
	// many-shard box these atomics are the contended cache lines.
	e.ingestCount.Add(attempted)
	e.Metrics.Counter("events.in").Add(attempted)
	e.Metrics.Counter("events.delivered").Add(delivered)
	e.Metrics.Histogram("ingest.batch.latency").Observe(time.Since(start))
	return firstErr
}

// ingestCapture is the ingest variant used by the engine's own capture
// callbacks (triggers, watched queries): like Ingest, but on an async
// engine it never blocks — if the target shard's buffer is full the
// event is evaluated inline on the capturing goroutine instead. That
// keeps re-entrant capture (a rule action writing to a captured table
// from a shard goroutine) deadlock-free at the cost of shard-ordering
// for the overflow event.
func (e *Engine) ingestCapture(ev *event.Event) error {
	if ev == nil {
		return errors.New("core: nil event")
	}
	if e.pipeline != nil {
		if enqueued, _ := e.pipeline.tryEnqueue(ev); enqueued {
			return nil
		}
		// Full buffer or closed pipeline: evaluate inline. The closed
		// case is Close's drain — a draining event's rule action can
		// still capture-cascade, and those derived events must not be
		// lost for "Close drains in-flight events" to hold.
	}
	_, err := e.ingestSync(ev)
	return err
}

// ingestBatchLossy evaluates a batch, continuing past per-event
// evaluation errors (each counted in ingest.errors) instead of
// aborting — the capture paths use it so one bad event in a burst
// doesn't discard the rest.
func (e *Engine) ingestBatchLossy(evs []*event.Event) {
	if e.pipeline != nil {
		for _, ev := range evs {
			if err := e.pipeline.enqueue(ev); err != nil {
				e.Metrics.Counter("ingest.errors").Inc()
			}
		}
		return
	}
	e.ingestBatchSync(evs, false)
}

// evalEvent is the evaluation core shared by the sync, batch, and
// shard-worker paths: rules fire, then pub/sub delivers, returning the
// delivery count. m and pub are optional reusable scratch; when nil
// the engine's allocating entry points are used. Metric accounting is
// left to callers so batch paths can amortize it.
func (e *Engine) evalEvent(ev *event.Event, m *rules.Matcher, pub *pubsub.Publisher) (int, error) {
	var err error
	if m != nil {
		_, err = m.Eval(ev)
	} else {
		_, err = e.Rules.Eval(ev)
	}
	if err != nil {
		return 0, fmt.Errorf("core: rules: %w", err)
	}
	var n int
	if pub != nil {
		n, err = pub.Publish(ev)
	} else {
		n, err = e.Broker.Publish(ev)
	}
	if err != nil {
		return 0, fmt.Errorf("core: publish: %w", err)
	}
	return n, nil
}

// IngestAs is Ingest gated by the ACL guard (ActPublish on
// "events/<type>") and audited.
func (e *Engine) IngestAs(principal string, ev *event.Event) error {
	resource := "events/" + ev.Type
	if err := e.Guard.Check(principal, security.ActPublish, resource); err != nil {
		if e.Trail != nil {
			e.Trail.Record(principal, "publish.denied", resource, "")
		}
		return err
	}
	if e.Trail != nil {
		if err := e.Trail.Record(principal, "publish", resource, ev.String()); err != nil {
			return err
		}
	}
	return e.Ingest(ev)
}

// Ingested reports the number of events pushed through Ingest.
func (e *Engine) Ingested() uint64 { return e.ingestCount.Load() }

// SetReadOnly flips follower mode on the underlying database: local
// mutations (DML, DDL, durable enqueues) fail with storage.ErrReadOnly
// while replicated records keep applying. Ephemeral reads — SELECT,
// SUB, MATCH — are unaffected.
func (e *Engine) SetReadOnly(ro bool) { e.DB.SetReadOnly(ro) }

// ReadOnly reports whether the engine is in follower mode.
func (e *Engine) ReadOnly() bool { return e.DB.ReadOnly() }

// CaptureTable installs an AFTER trigger on a table so every committed
// change enters the ingest path as a "db.<table>.<op>" event — capture
// path 1 of the paper.
func (e *Engine) CaptureTable(table string) error {
	_, err := e.Triggers.Register(trigger.Def{
		Name:   "capture_" + table,
		Table:  table,
		Timing: trigger.After,
	})
	return err
}

// TailJournal starts live journal capture (capture path 2) into the
// ingest path, returning a stop function. Journal events go through the
// same pipeline as trigger capture, so downstream logic is agnostic to
// the capture mechanism.
func (e *Engine) TailJournal(f journal.Filter, buffer int) (stop func()) {
	sub := e.Miner.Tail(f, buffer)
	done := make(chan struct{})
	go func() {
		// Drain opportunistically into batches so a burst of journal
		// records pays per-event overhead once per batch, not per event.
		batch := make([]*event.Event, 0, 64)
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				batch = drainInto(sub.C, append(batch[:0], ev))
				e.ingestBatchLossy(batch)
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		sub.Cancel()
	}
}

// WatchedQuery is a query differ bound to the ingest path (capture
// path 3).
type WatchedQuery struct {
	differ *query.Differ
	engine *Engine
}

// WatchQuery creates a watched query; call Poll on a schedule. Result-
// set changes become "query.<name>.<added|removed|changed>" events.
func (e *Engine) WatchQuery(name string, q *query.Query, keyCols ...string) *WatchedQuery {
	return &WatchedQuery{differ: query.NewDiffer(name, q, e.DB, keyCols...), engine: e}
}

// Poll evaluates the query and ingests any result-set change events,
// returning how many were produced. Like the other capture paths it
// never blocks on a full shard buffer, so it is safe to call from rule
// actions and handlers on an async engine.
func (w *WatchedQuery) Poll() (int, error) {
	evs, err := w.differ.PollEvents()
	if err != nil {
		return 0, err
	}
	for _, ev := range evs {
		if err := w.engine.ingestCapture(ev); err != nil {
			return 0, err
		}
	}
	return len(evs), nil
}

// CreateQueue makes a staging area (durable when the engine is).
func (e *Engine) CreateQueue(name string, cfg queue.Config) (*queue.Queue, error) {
	return e.Queues.Create(name, cfg)
}

// EnsureQueue returns the named staging queue, attaching to its
// recovered backing table or creating it as needed — the idempotent
// entry point for durable consumers that must work the same on first
// contact, after a reconnect, and after an engine restart.
func (e *Engine) EnsureQueue(name string, cfg queue.Config) (*queue.Queue, error) {
	if q, ok := e.Queues.Get(name); ok {
		return q, nil
	}
	if q, err := e.Queues.Open(name, cfg); err == nil {
		return q, nil
	}
	q, err := e.Queues.Create(name, cfg)
	if err != nil {
		// Lost a create race: the table exists now, so attach to it.
		if q2, err2 := e.Queues.Open(name, cfg); err2 == nil {
			return q2, nil
		}
		return nil, err
	}
	return q, nil
}

// ReplayQueue mines the WAL journal for messages staged into a queue
// and decodes each back into its original event — including messages
// long since acknowledged and deleted, because the redo log remembers
// every INSERT. This is the paper's hybrid historical+live consumption
// (§2.2.a.ii): a durable subscriber backfills from a log position,
// then goes live on the queue. Returns the next LSN to resume from and
// how many messages were replayed. Requires a durable engine
// (journal.ErrNotDurable otherwise).
func (e *Engine) ReplayQueue(name string, fromLSN uint64, fn func(ev *event.Event, lsn uint64, msgID int64) error) (nextLSN uint64, replayed int, err error) {
	f := journal.Filter{
		Tables: []string{queue.TableName(name)},
		Ops:    []storage.ChangeKind{storage.Insert},
	}
	nextLSN, err = e.Miner.MineChanges(fromLSN, f, func(lsn uint64, c *storage.Change) error {
		id, ev, err := queue.DecodeStagedInsert(c)
		if err != nil {
			return err
		}
		replayed++
		return fn(ev, lsn, id)
	})
	return nextLSN, replayed, err
}

// SubscribeQueue routes matching events into a staging queue.
func (e *Engine) SubscribeQueue(subID, subscriber, filter, queueName string, priority int) error {
	q, ok := e.Queues.Get(queueName)
	if !ok {
		return fmt.Errorf("core: no queue %q", queueName)
	}
	return e.Broker.SubscribeQueue(subID, subscriber, filter, q, priority)
}

// Subscribe routes matching events to a callback.
func (e *Engine) Subscribe(subID, subscriber, filter string, h pubsub.Handler) error {
	return e.Broker.Subscribe(subID, subscriber, filter, h)
}

// SubscribeAs is Subscribe gated by the ACL guard and audited.
func (e *Engine) SubscribeAs(principal, subID, filter string, h pubsub.Handler) error {
	if err := e.Guard.Check(principal, security.ActSubscribe, "subscriptions"); err != nil {
		if e.Trail != nil {
			e.Trail.Record(principal, "subscribe.denied", "subscriptions", subID)
		}
		return err
	}
	if e.Trail != nil {
		if err := e.Trail.Record(principal, "subscribe", "subscriptions", subID+" "+filter); err != nil {
			return err
		}
	}
	return e.Broker.Subscribe(subID, principal, filter, h)
}

// AddRule installs a rule in the engine's indexed rule set.
func (e *Engine) AddRule(name, condition string, priority int, action rules.Action) error {
	_, err := e.Rules.Add(name, condition, priority, action)
	return err
}
