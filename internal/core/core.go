// Package core wires the substrates into the paper's event-driven
// architecture: capture (triggers, journal mining, query differs) →
// staging (queues) → evaluation (rules, pub/sub, CEP, continuous
// queries, analytics/models) → consumption (dispatch, forwarding,
// external services), with security and auditing across every stage.
//
// The Engine is the deliverable a downstream user adopts; the root
// package eventdb re-exports it as the public API.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"eventdb/internal/audit"
	"eventdb/internal/event"
	"eventdb/internal/journal"
	"eventdb/internal/metrics"
	"eventdb/internal/pubsub"
	"eventdb/internal/query"
	"eventdb/internal/queue"
	"eventdb/internal/rules"
	"eventdb/internal/security"
	"eventdb/internal/storage"
	"eventdb/internal/trigger"
)

// Config configures Open.
type Config struct {
	// Dir enables durability (WAL, recoverable queues/tables). Empty
	// means fully in-memory.
	Dir string
	// SyncEvery controls WAL fsync cadence (0 = batched by the OS).
	SyncEvery int
	// Secure installs a deny-by-default ACL guard; when false, all
	// principal-checked operations are allowed.
	Secure bool
	// AuditTable, when non-empty, records engine operations to an audit
	// trail table of this name.
	AuditTable string
}

// Engine is the assembled event-processing platform.
type Engine struct {
	DB       *storage.DB
	Queues   *queue.Manager
	Triggers *trigger.Manager
	Miner    *journal.Miner
	Broker   *pubsub.Broker
	Rules    *rules.Engine
	Metrics  *metrics.Registry
	Guard    *security.Guard
	Trail    *audit.Trail

	ingestCount atomic.Uint64
	closed      atomic.Bool
}

// Open assembles an engine.
func Open(cfg Config) (*Engine, error) {
	db, err := storage.Open(storage.Options{Dir: cfg.Dir, SyncEvery: cfg.SyncEvery})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		DB:      db,
		Queues:  queue.NewManager(db),
		Miner:   journal.NewMiner(db),
		Broker:  pubsub.NewBroker(),
		Rules:   rules.NewEngine(rules.Options{Indexed: true}),
		Metrics: metrics.NewRegistry(),
		Guard:   security.NewGuard(),
	}
	if !cfg.Secure {
		e.Guard.DefaultAllow = true
	}
	if cfg.AuditTable != "" {
		tr, err := audit.NewTrail(db, cfg.AuditTable)
		if err != nil {
			db.Close()
			return nil, err
		}
		e.Trail = tr
	}
	// Trigger-captured events flow into the standard ingest path.
	e.Triggers = trigger.NewManager(db, func(ev *event.Event) {
		if err := e.Ingest(ev); err != nil {
			e.Metrics.Counter("ingest.errors").Inc()
		}
	})
	return e, nil
}

// Close shuts the engine down, flushing the WAL.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.Triggers.Close()
	e.Queues.Close()
	return e.DB.Close()
}

// Ingest pushes one event through the evaluation layer: rules fire
// first (highest priority first), then pub/sub delivers to subscribers.
// This is the paper's core flow — events in, valuable information out.
func (e *Engine) Ingest(ev *event.Event) error {
	if ev == nil {
		return errors.New("core: nil event")
	}
	start := time.Now()
	e.ingestCount.Add(1)
	e.Metrics.Counter("events.in").Inc()
	if _, err := e.Rules.Eval(ev); err != nil {
		return fmt.Errorf("core: rules: %w", err)
	}
	n, err := e.Broker.Publish(ev)
	if err != nil {
		return fmt.Errorf("core: publish: %w", err)
	}
	e.Metrics.Counter("events.delivered").Add(uint64(n))
	e.Metrics.Histogram("ingest.latency").Observe(time.Since(start))
	return nil
}

// IngestAs is Ingest gated by the ACL guard (ActPublish on
// "events/<type>") and audited.
func (e *Engine) IngestAs(principal string, ev *event.Event) error {
	resource := "events/" + ev.Type
	if err := e.Guard.Check(principal, security.ActPublish, resource); err != nil {
		if e.Trail != nil {
			e.Trail.Record(principal, "publish.denied", resource, "")
		}
		return err
	}
	if e.Trail != nil {
		if err := e.Trail.Record(principal, "publish", resource, ev.String()); err != nil {
			return err
		}
	}
	return e.Ingest(ev)
}

// Ingested reports the number of events pushed through Ingest.
func (e *Engine) Ingested() uint64 { return e.ingestCount.Load() }

// CaptureTable installs an AFTER trigger on a table so every committed
// change enters the ingest path as a "db.<table>.<op>" event — capture
// path 1 of the paper.
func (e *Engine) CaptureTable(table string) error {
	_, err := e.Triggers.Register(trigger.Def{
		Name:   "capture_" + table,
		Table:  table,
		Timing: trigger.After,
	})
	return err
}

// TailJournal starts live journal capture (capture path 2) into the
// ingest path, returning a stop function. Journal events go through the
// same pipeline as trigger capture, so downstream logic is agnostic to
// the capture mechanism.
func (e *Engine) TailJournal(f journal.Filter, buffer int) (stop func()) {
	sub := e.Miner.Tail(f, buffer)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				if err := e.Ingest(ev); err != nil {
					e.Metrics.Counter("ingest.errors").Inc()
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		sub.Cancel()
	}
}

// WatchedQuery is a query differ bound to the ingest path (capture
// path 3).
type WatchedQuery struct {
	differ *query.Differ
	engine *Engine
}

// WatchQuery creates a watched query; call Poll on a schedule. Result-
// set changes become "query.<name>.<added|removed|changed>" events.
func (e *Engine) WatchQuery(name string, q *query.Query, keyCols ...string) *WatchedQuery {
	return &WatchedQuery{differ: query.NewDiffer(name, q, e.DB, keyCols...), engine: e}
}

// Poll evaluates the query and ingests any result-set change events,
// returning how many were produced.
func (w *WatchedQuery) Poll() (int, error) {
	evs, err := w.differ.PollEvents()
	if err != nil {
		return 0, err
	}
	for _, ev := range evs {
		if err := w.engine.Ingest(ev); err != nil {
			return 0, err
		}
	}
	return len(evs), nil
}

// CreateQueue makes a staging area (durable when the engine is).
func (e *Engine) CreateQueue(name string, cfg queue.Config) (*queue.Queue, error) {
	return e.Queues.Create(name, cfg)
}

// SubscribeQueue routes matching events into a staging queue.
func (e *Engine) SubscribeQueue(subID, subscriber, filter, queueName string, priority int) error {
	q, ok := e.Queues.Get(queueName)
	if !ok {
		return fmt.Errorf("core: no queue %q", queueName)
	}
	return e.Broker.SubscribeQueue(subID, subscriber, filter, q, priority)
}

// Subscribe routes matching events to a callback.
func (e *Engine) Subscribe(subID, subscriber, filter string, h pubsub.Handler) error {
	return e.Broker.Subscribe(subID, subscriber, filter, h)
}

// SubscribeAs is Subscribe gated by the ACL guard and audited.
func (e *Engine) SubscribeAs(principal, subID, filter string, h pubsub.Handler) error {
	if err := e.Guard.Check(principal, security.ActSubscribe, "subscriptions"); err != nil {
		if e.Trail != nil {
			e.Trail.Record(principal, "subscribe.denied", "subscriptions", subID)
		}
		return err
	}
	if e.Trail != nil {
		if err := e.Trail.Record(principal, "subscribe", "subscriptions", subID+" "+filter); err != nil {
			return err
		}
	}
	return e.Broker.Subscribe(subID, principal, filter, h)
}

// AddRule installs a rule in the engine's indexed rule set.
func (e *Engine) AddRule(name, condition string, priority int, action rules.Action) error {
	_, err := e.Rules.Add(name, condition, priority, action)
	return err
}
