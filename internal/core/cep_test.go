package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/pubsub"
	"eventdb/internal/val"
)

var fraudSpec = []byte(`{"steps":[
	{"alias":"a","type":"login"},
	{"alias":"b","type":"wire","guard":"user = a.user AND amount > 10000"}],
	"within":"1h"}`)

func cepEvent(typ, user string, amount int) *event.Event {
	return event.New(typ, map[string]any{"user": user, "amount": amount})
}

// collector gathers delivered events across shard goroutines.
type collector struct {
	mu  sync.Mutex
	evs []*event.Event
}

func (c *collector) handler(d pubsub.Delivery) {
	c.mu.Lock()
	c.evs = append(c.evs, d.Event)
	c.mu.Unlock()
}

func (c *collector) events() []*event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*event.Event(nil), c.evs...)
}

func TestRegisterPatternEmitsComposite(t *testing.T) {
	e := open(t, Config{})
	if err := e.RegisterPattern("fraud", fraudSpec); err != nil {
		t.Fatal(err)
	}
	var got collector
	if err := e.Subscribe("s", "ops", `$type = 'cep.fraud'`, got.handler); err != nil {
		t.Fatal(err)
	}
	e.Ingest(cepEvent("login", "mallory", 0))
	e.Ingest(cepEvent("wire", "mallory", 50000))
	e.Ingest(cepEvent("wire", "alice", 50000)) // no matching login
	evs := got.events()
	if len(evs) != 1 {
		t.Fatalf("composite events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Type != "cep.fraud" || ev.Source != "cep" {
		t.Errorf("composite = %s/%s", ev.Type, ev.Source)
	}
	// Attributes carry the bound events' attributes prefixed by alias.
	if v, ok := ev.Get("a_user"); !ok {
		t.Error("a_user missing")
	} else if s, _ := v.AsString(); s != "mallory" {
		t.Errorf("a_user = %v", v)
	}
	if _, ok := ev.Get("b_amount"); !ok {
		t.Errorf("b_amount missing: %v", ev)
	}
	st := e.PatternStats()
	if st.Registered != 1 || st.Matches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegisterPatternErrors(t *testing.T) {
	e := open(t, Config{})
	if err := e.RegisterPattern("p", []byte(`{"steps":`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := e.RegisterPattern("p", []byte(`{"steps":[]}`)); err == nil {
		t.Error("empty steps accepted")
	}
	if err := e.RegisterPattern("p", fraudSpec); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPattern("p", fraudSpec); !errors.Is(err, ErrPatternExists) {
		t.Errorf("dup register err = %v, want ErrPatternExists", err)
	}
	if err := e.UnregisterPattern("nope"); !errors.Is(err, ErrNoPattern) {
		t.Errorf("unknown unregister err = %v, want ErrNoPattern", err)
	}
	if err := e.UnregisterPattern("p"); err != nil {
		t.Fatal(err)
	}
	if got := e.Patterns(); len(got) != 0 {
		t.Errorf("patterns after unregister = %v", got)
	}
	// Unregistered patterns stop matching.
	var got collector
	e.Subscribe("s", "ops", `$type LIKE 'cep.%'`, got.handler)
	e.Ingest(cepEvent("login", "u", 0))
	e.Ingest(cepEvent("wire", "u", 99999))
	if evs := got.events(); len(evs) != 0 {
		t.Errorf("events after unregister = %v", evs)
	}
}

func TestShardedPatternFeed(t *testing.T) {
	e := open(t, Config{Shards: 4})
	if err := e.RegisterPattern("fraud", fraudSpec); err != nil {
		t.Fatal(err)
	}
	var got collector
	if err := e.Subscribe("s", "ops", `$type = 'cep.fraud'`, got.handler); err != nil {
		t.Fatal(err)
	}
	// login and wire hash to different shards (shard key is the event
	// type), so this exercises the cross-shard merge feeder. Feed order
	// across shards follows arrival — the sort only orders each sweep —
	// so settle the logins before the wires: interleaved ingest could
	// legitimately feed a wire before its login.
	const n = 50
	for i := 0; i < n; i++ {
		e.Ingest(cepEvent("login", "u", 0))
	}
	e.Flush()
	e.FlushPatterns()
	for i := 0; i < n; i++ {
		e.Ingest(cepEvent("wire", "u", 50000))
	}
	// Settle: pipeline → pattern feeder → emitted matches → pipeline.
	for i := 0; i < 3; i++ {
		e.Flush()
		e.FlushPatterns()
	}
	evs := got.events()
	if len(evs) == 0 {
		t.Fatal("no composite events on sharded engine")
	}
	for _, ev := range evs {
		if ev.Type != "cep.fraud" {
			t.Fatalf("unexpected event %s", ev.Type)
		}
	}
	if st := e.PatternStats(); st.Matches != uint64(len(evs)) {
		t.Errorf("stats.Matches = %d, delivered %d", st.Matches, len(evs))
	}
}

// TestPatternHorizonInjectedClock drives horizon GC with a synthetic
// clock: a quiet stream must shed its dead partial matches without any
// new event arriving.
func TestPatternHorizonInjectedClock(t *testing.T) {
	e := open(t, Config{})
	spec := []byte(`{"steps":[{"alias":"a","type":"login"},{"alias":"b","type":"wire"}],"within":"10s"}`)
	if err := e.RegisterPattern("p", spec); err != nil {
		t.Fatal(err)
	}
	ev := cepEvent("login", "u", 0)
	e.Ingest(ev)
	if st := e.PatternStats(); st.Instances != 1 {
		t.Fatalf("instances = %d, want 1", st.Instances)
	}
	if n := e.AdvancePatternHorizon(ev.Time.Add(5 * time.Second)); n != 0 {
		t.Fatalf("pruned inside window = %d", n)
	}
	if n := e.AdvancePatternHorizon(ev.Time.Add(11 * time.Second)); n != 1 {
		t.Fatalf("pruned past window = %d, want 1", n)
	}
	st := e.PatternStats()
	if st.Instances != 0 || st.Pruned != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPatternHorizonTicker lets the engine clock do it: with a fast
// CEPAdvanceInterval, stale partials disappear while nothing is
// ingested at all.
func TestPatternHorizonTicker(t *testing.T) {
	e := open(t, Config{CEPAdvanceInterval: 2 * time.Millisecond})
	spec := []byte(`{"steps":[{"alias":"a","type":"login"},{"alias":"b","type":"wire"}],"within":"30ms"}`)
	if err := e.RegisterPattern("p", spec); err != nil {
		t.Fatal(err)
	}
	e.Ingest(cepEvent("login", "u", 0))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := e.PatternStats(); st.Instances == 0 && st.Pruned == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticker never pruned: %+v", e.PatternStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPatternStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachPatternStore("wire_patterns"); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPattern("fraud", fraudSpec); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPattern("gone", fraudSpec); err != nil {
		t.Fatal(err)
	}
	if err := e.UnregisterPattern("gone"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.AttachPatternStore("wire_patterns"); err != nil {
		t.Fatal(err)
	}
	if got := e2.Patterns(); len(got) != 1 || got[0] != "fraud" {
		t.Fatalf("reloaded patterns = %v, want [fraud]", got)
	}
	if spec, ok := e2.PatternSpec("fraud"); !ok || string(spec) != string(fraudSpec) {
		t.Fatalf("reloaded spec = %q, %v", spec, ok)
	}
	// The reloaded pattern matches.
	var got collector
	e2.Subscribe("s", "ops", `$type = 'cep.fraud'`, got.handler)
	e2.Ingest(cepEvent("login", "u", 0))
	e2.Ingest(cepEvent("wire", "u", 20000))
	if evs := got.events(); len(evs) != 1 {
		t.Fatalf("composite events after restart = %d, want 1", len(evs))
	}
}

// TestPatternOnCapturedChanges closes the loop with the paper's capture
// paths: a temporal pattern over db.<table>.insert events produced by a
// captured table.
func TestPatternOnCapturedChanges(t *testing.T) {
	e := open(t, Config{})
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.CaptureTable("readings"); err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"steps":[
		{"alias":"a","type":"db.readings.insert","guard":"new_kwh > 100"},
		{"alias":"b","type":"db.readings.insert","guard":"new_meter = a.new_meter AND new_kwh > 100"}]}`)
	if err := e.RegisterPattern("surge", spec); err != nil {
		t.Fatal(err)
	}
	var got collector
	e.Subscribe("s", "ops", `$type = 'cep.surge'`, got.handler)
	ins := func(meter string, kwh float64) {
		if _, err := e.DB.Insert("readings", map[string]val.Value{
			"meter": val.String(meter), "kwh": val.Float(kwh),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ins("m1", 150)
	ins("m2", 200) // different meter: must not pair with m1
	ins("m1", 50)  // below threshold: ignored, SkipTillNext skips it
	ins("m1", 180) // completes the m1 surge
	evs := got.events()
	if len(evs) != 1 {
		t.Fatalf("surge events = %d, want 1", len(evs))
	}
	if v, ok := evs[0].Get("a_new_meter"); !ok {
		t.Error("a_new_meter missing")
	} else if s, _ := v.AsString(); s != "m1" {
		t.Errorf("a_new_meter = %v", v)
	}
}
