package core

import (
	"errors"
	"fmt"
	"time"

	"eventdb/internal/query"
)

// The watch scheduler drives capture path 3 (§2.2.a.iii) on a clock:
// each registered watch polls its query differ on an interval, and
// result-set changes enter the ingest path as
// "query.<name>.<added|removed|changed>" events — the server's WATCH
// verb and any embedded caller share this one scheduler.

// Watch registry errors, distinguishable so the wire layer can map them
// to stable error codes.
var (
	ErrWatchExists = errors.New("core: watch already registered")
	ErrNoWatch     = errors.New("core: no such watch")
)

// defaultWatchInterval paces watches registered with no interval.
const defaultWatchInterval = 100 * time.Millisecond

// watchEntry is one scheduled watched query.
type watchEntry struct {
	wq   *WatchedQuery
	stop chan struct{}
	done chan struct{}
}

// StartWatch registers a watched query polled every interval (a default
// cadence when interval is zero). The first poll runs immediately and
// reports the query's current rows as "added" events — the baseline a
// subscriber can reconcile against — and every later poll emits only
// the diffs. The name is a global registry key; StopWatch cancels it.
func (e *Engine) StartWatch(name string, q *query.Query, interval time.Duration, keyCols ...string) error {
	if name == "" {
		return errors.New("core: watch needs a name")
	}
	if interval <= 0 {
		interval = defaultWatchInterval
	}
	w := &watchEntry{
		wq:   e.WatchQuery(name, q, keyCols...),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	e.watchMu.Lock()
	if e.watches == nil {
		e.watches = make(map[string]*watchEntry)
	}
	if _, dup := e.watches[name]; dup {
		e.watchMu.Unlock()
		return fmt.Errorf("%w: %q", ErrWatchExists, name)
	}
	e.watches[name] = w
	e.watchMu.Unlock()
	go e.runWatch(w, interval)
	return nil
}

// runWatch is the per-watch poll loop. Poll errors (a dropped table, a
// broken predicate) are counted, not fatal: the watch keeps polling so
// a transiently missing table resumes capture when it reappears.
func (e *Engine) runWatch(w *watchEntry, interval time.Duration) {
	defer close(w.done)
	poll := func() {
		if _, err := w.wq.Poll(); err != nil {
			e.Metrics.Counter("watch.errors").Inc()
		}
	}
	poll() // baseline
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			poll()
		case <-w.stop:
			return
		}
	}
}

// StopWatch cancels a watch and waits for its poll loop to exit, so no
// poll can be in flight once it returns.
func (e *Engine) StopWatch(name string) error {
	e.watchMu.Lock()
	w, ok := e.watches[name]
	if ok {
		delete(e.watches, name)
	}
	e.watchMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoWatch, name)
	}
	close(w.stop)
	<-w.done
	return nil
}

// Watches returns the names of registered watches.
func (e *Engine) Watches() []string {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	out := make([]string, 0, len(e.watches))
	for n := range e.watches {
		out = append(out, n)
	}
	return out
}

// stopAllWatches cancels every watch (the Close path).
func (e *Engine) stopAllWatches() {
	e.watchMu.Lock()
	watches := e.watches
	e.watches = nil
	e.watchMu.Unlock()
	for _, w := range watches {
		close(w.stop)
		<-w.done
	}
}
