// Engine-level pattern registry: the shared CEP automaton wired into
// the ingest pipeline. Every evaluated event is observed by the
// automaton; completed matches re-enter the engine as "cep.<pattern>"
// composite events through the capture path, so subscriptions,
// continuous queries, durable queues, and triggers all see them like
// any other event.
//
// On a synchronous engine the automaton feeds inline on the ingesting
// goroutine. On a sharded engine each worker hands its evaluated events
// to a per-shard bounded queue and a single feeder goroutine merges
// them — draining every queue, then sorting the sweep by (time, id) —
// so the automaton sees one nondecreasing-time stream without the
// shards contending on its lock. A clock goroutine advances the WITHIN
// horizon on quiet streams so dead partial matches don't pin memory
// until the next event happens to arrive.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eventdb/internal/cep"
	"eventdb/internal/event"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// Pattern registry errors, distinguished so the wire layer can answer
// with its stable dup/nopattern codes.
var (
	ErrPatternExists = errors.New("core: pattern already registered")
	ErrNoPattern     = errors.New("core: no such pattern")
)

const (
	defaultCEPBuffer     = 4096
	defaultCEPGCInterval = 500 * time.Millisecond
)

// PatternStats is a snapshot of the pattern registry's counters.
type PatternStats struct {
	Registered int    // registered patterns
	Instances  int    // live partial matches
	Matches    uint64 // composite events emitted
	Pruned     uint64 // partials expired by the WITHIN horizon
	Dropped    uint64 // partials evicted by the instance cap
}

// cepRegistry owns the shared automaton and its feed plumbing.
type cepRegistry struct {
	e *Engine

	mu    sync.Mutex // guards nfa, specs, table, started
	nfa   *cep.Shared
	specs map[string][]byte
	table string // persistence table; "" until AttachPatternStore

	// active gates the per-event observe hook: the common case of an
	// engine with no patterns costs one atomic load per event.
	active  atomic.Int64
	stopped atomic.Bool

	// Sharded-feed plumbing (nil/unused on synchronous engines).
	qs      []chan *event.Event
	pending atomic.Int64
	notify  chan struct{}

	started    bool
	quit       chan struct{}
	wg         sync.WaitGroup
	gcInterval time.Duration
	now        func() time.Time // injectable for horizon-GC tests
}

func newCEPRegistry(e *Engine, cfg Config) *cepRegistry {
	c := &cepRegistry{
		e:          e,
		nfa:        cep.NewShared(),
		specs:      make(map[string][]byte),
		gcInterval: cfg.CEPAdvanceInterval,
		now:        time.Now,
	}
	if c.gcInterval <= 0 {
		c.gcInterval = defaultCEPGCInterval
	}
	if cfg.CEPMaxInstances > 0 {
		c.nfa.MaxInstances = cfg.CEPMaxInstances
	}
	if e.pipeline != nil {
		buf := cfg.CEPBuffer
		if buf <= 0 {
			buf = defaultCEPBuffer
		}
		c.qs = make([]chan *event.Event, len(e.pipeline.shards))
		for i := range c.qs {
			c.qs[i] = make(chan *event.Event, buf)
		}
		c.notify = make(chan struct{}, 1)
	}
	return c
}

// ensureStarted launches the feeder and horizon-GC goroutines on first
// registration, so engines that never use patterns never pay for them.
// Caller holds c.mu.
func (c *cepRegistry) ensureStarted() {
	if c.started {
		return
	}
	c.started = true
	c.quit = make(chan struct{})
	if c.qs != nil {
		c.wg.Add(1)
		go c.runFeeder()
	}
	c.wg.Add(1)
	go c.runGC()
}

func (c *cepRegistry) close() {
	c.stopped.Store(true)
	c.mu.Lock()
	started := c.started
	c.started = false
	c.mu.Unlock()
	if started {
		close(c.quit)
		c.wg.Wait()
	}
}

// cepObserve hands one evaluated event to the pattern automaton.
// shardIdx is the evaluating pipeline shard, or -1 for the synchronous
// and inline-capture paths. Composite "cep." events are not re-fed —
// patterns over raw events only, so a pattern can never feed itself.
func (e *Engine) cepObserve(shardIdx int, ev *event.Event) {
	c := e.cep
	if c.active.Load() == 0 || c.stopped.Load() {
		return
	}
	if strings.HasPrefix(ev.Type, "cep.") {
		return
	}
	if c.qs == nil {
		c.feedInline(ev)
		return
	}
	if shardIdx < 0 {
		shardIdx = 0 // inline capture fallback on a sharded engine
	}
	c.pending.Add(1)
	select {
	case c.qs[shardIdx] <- ev:
		select {
		case c.notify <- struct{}{}:
		default:
		}
	default:
		// Never block an ingest worker on the pattern plane: a full
		// feed queue drops the event for pattern purposes only.
		c.pending.Add(-1)
		e.Metrics.Counter("cep.feed.drops").Inc()
	}
}

// feedInline runs the automaton on the caller's goroutine (synchronous
// engines). Matches materialize into events under the lock — the
// automaton reuses its match slice — and re-enter ingest after it is
// released, so a match's own cascade can re-enter cepObserve safely.
func (c *cepRegistry) feedInline(ev *event.Event) {
	var outs []*event.Event
	c.mu.Lock()
	for _, m := range c.nfa.Feed(ev) {
		outs = append(outs, m.Event())
	}
	c.mu.Unlock()
	c.emit(outs)
}

func (c *cepRegistry) emit(outs []*event.Event) {
	for _, out := range outs {
		if err := c.e.ingestCapture(out); err != nil {
			c.e.Metrics.Counter("ingest.errors").Inc()
		}
	}
}

// runFeeder is the sharded engines' single automaton feeder: woken by
// observers, it sweeps every shard queue, merges the sweep into
// nondecreasing (time, id) order, and feeds the batch under one lock
// acquisition. Per-shard arrival order is preserved by the stable sort.
// Cross-shard order is best-effort: the sort repairs skew between
// events captured in the same sweep, but a shard whose worker lags a
// sweep entirely delivers late — the same cross-key reordering the
// sharded pipeline itself permits, absorbed by WITHIN windows.
func (c *cepRegistry) runFeeder() {
	defer c.wg.Done()
	var batch []*event.Event
	for {
		select {
		case <-c.notify:
			batch = c.drainFeed(batch)
		case <-c.quit:
			// Final drain: events the closing pipeline evaluated after
			// our last sweep still reach the automaton.
			c.drainFeed(batch)
			return
		}
	}
}

func (c *cepRegistry) drainFeed(batch []*event.Event) []*event.Event {
	for {
		batch = batch[:0]
		for _, q := range c.qs {
		queue:
			for {
				select {
				case ev := <-q:
					batch = append(batch, ev)
				default:
					break queue
				}
			}
		}
		if len(batch) == 0 {
			return batch
		}
		slices.SortStableFunc(batch, func(a, b *event.Event) int {
			if a.Time.Before(b.Time) {
				return -1
			}
			if a.Time.After(b.Time) {
				return 1
			}
			return cmp.Compare(a.ID, b.ID)
		})
		var outs []*event.Event
		c.mu.Lock()
		for _, ev := range batch {
			for _, m := range c.nfa.Feed(ev) {
				outs = append(outs, m.Event())
			}
		}
		c.mu.Unlock()
		c.emit(outs)
		c.pending.Add(-int64(len(batch)))
	}
}

// runGC advances the WITHIN horizon on the engine clock, pruning stale
// partial matches between events.
func (c *cepRegistry) runGC() {
	defer c.wg.Done()
	t := time.NewTicker(c.gcInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.e.AdvancePatternHorizon(c.now())
		}
	}
}

// RegisterPattern compiles a JSON pattern spec (see cep.ParseSpec) and
// registers it in the shared automaton. The binding persists in the
// pattern store when one is attached, surviving restarts. Returns
// ErrPatternExists for duplicate names.
func (e *Engine) RegisterPattern(name string, spec []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	p, err := cep.ParseSpec(name, spec)
	if err != nil {
		return err
	}
	c := e.cep
	c.mu.Lock()
	if _, dup := c.specs[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPatternExists, name)
	}
	if err := c.nfa.Add(p); err != nil {
		c.mu.Unlock()
		return err
	}
	c.specs[name] = append([]byte(nil), spec...)
	c.active.Add(1)
	c.ensureStarted()
	table := c.table
	c.mu.Unlock()
	if table != "" {
		if err := c.persist(name, spec); err != nil {
			// Roll the in-memory registration back: a binding that
			// claimed durability but would vanish on restart is worse
			// than a clean failure.
			c.mu.Lock()
			c.nfa.Remove(name)
			delete(c.specs, name)
			c.active.Add(-1)
			c.mu.Unlock()
			return err
		}
	}
	return nil
}

// UnregisterPattern removes a registered pattern and its persisted
// binding. Returns ErrNoPattern for unknown names.
func (e *Engine) UnregisterPattern(name string) error {
	c := e.cep
	c.mu.Lock()
	if _, ok := c.specs[name]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoPattern, name)
	}
	if err := c.nfa.Remove(name); err != nil {
		c.mu.Unlock()
		return err
	}
	delete(c.specs, name)
	c.active.Add(-1)
	table := c.table
	c.mu.Unlock()
	if table != "" {
		return c.unpersist(name)
	}
	return nil
}

// Patterns returns the registered pattern names, sorted.
func (e *Engine) Patterns() []string {
	c := e.cep
	c.mu.Lock()
	names := make([]string, 0, len(c.specs))
	for name := range c.specs {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// PatternSpec returns a registered pattern's JSON spec.
func (e *Engine) PatternSpec(name string) ([]byte, bool) {
	c := e.cep
	c.mu.Lock()
	defer c.mu.Unlock()
	spec, ok := c.specs[name]
	return spec, ok
}

// PatternStats snapshots the registry's counters (for STATS).
func (e *Engine) PatternStats() PatternStats {
	c := e.cep
	c.mu.Lock()
	st := c.nfa.Stats()
	c.mu.Unlock()
	return PatternStats{
		Registered: st.Patterns,
		Instances:  st.Instances,
		Matches:    st.Matches,
		Pruned:     st.Pruned,
		Dropped:    st.Dropped,
	}
}

// AdvancePatternHorizon prunes partial matches whose WITHIN window has
// passed as of now, returning how many. The engine clock calls this on
// a cadence (Config.CEPAdvanceInterval); tests call it directly with an
// injected clock.
func (e *Engine) AdvancePatternHorizon(now time.Time) int {
	c := e.cep
	c.mu.Lock()
	n := c.nfa.Advance(now)
	c.mu.Unlock()
	return n
}

// FlushPatterns blocks until every event handed to the pattern feeder
// so far has been fed through the automaton. Matches it emitted may
// still be in the ingest pipeline; compose with Flush for end-to-end
// settling. A no-op on synchronous engines, where feeding is inline.
func (e *Engine) FlushPatterns() {
	c := e.cep
	wait := 50 * time.Microsecond
	for c.pending.Load() > 0 {
		time.Sleep(wait)
		if wait < 5*time.Millisecond {
			wait *= 2
		}
	}
}

// PatternsTableSchema returns the schema used to persist pattern
// bindings: one row per pattern, the spec as it arrived on the wire.
func PatternsTableSchema(table string) (*storage.Schema, error) {
	return storage.NewSchema(table, []storage.Column{
		{Name: "name", Kind: val.KindString, NotNull: true},
		{Name: "spec", Kind: val.KindString, NotNull: true},
	}, "name")
}

// AttachPatternStore persists pattern bindings in a database table
// (expressions as data, like the broker's subscription store) and
// reloads existing rows, re-registering each pattern. Reload skips
// names already registered, so attach-after-register is safe.
func (e *Engine) AttachPatternStore(table string) error {
	if _, ok := e.DB.Table(table); !ok {
		schema, err := PatternsTableSchema(table)
		if err != nil {
			return err
		}
		if err := e.DB.CreateTable(schema); err != nil {
			return err
		}
	}
	c := e.cep
	tbl, _ := e.DB.Table(table)
	var loadErr error
	tbl.Scan(func(_ storage.RowID, r storage.Row) bool {
		name, _ := r[0].AsString()
		spec, _ := r[1].AsString()
		c.mu.Lock()
		if _, dup := c.specs[name]; dup {
			c.mu.Unlock()
			return true
		}
		p, err := cep.ParseSpec(name, []byte(spec))
		if err == nil {
			err = c.nfa.Add(p)
		}
		if err != nil {
			loadErr = fmt.Errorf("core: pattern %q: %w", name, err)
			c.mu.Unlock()
			return false
		}
		c.specs[name] = []byte(spec)
		c.active.Add(1)
		c.ensureStarted()
		c.mu.Unlock()
		return true
	})
	if loadErr != nil {
		return loadErr
	}
	c.mu.Lock()
	c.table = table
	c.mu.Unlock()
	return nil
}

func (c *cepRegistry) persist(name string, spec []byte) error {
	_, err := c.e.DB.Insert(c.table, map[string]val.Value{
		"name": val.String(name),
		"spec": val.String(string(spec)),
	})
	return err
}

func (c *cepRegistry) unpersist(name string) error {
	tbl, ok := c.e.DB.Table(c.table)
	if !ok {
		return nil
	}
	if _, rid, ok := tbl.GetByPK(val.String(name)); ok {
		return c.e.DB.DeleteRow(c.table, rid)
	}
	return nil
}
