package core

import (
	"fmt"
	"runtime"
	"time"
)

// Degraded reports whether the storage layer fail-stopped after a WAL
// write or fsync failure, and the failure that caused it. While
// degraded, every mutation path returns storage.ErrDegraded; reads,
// subscriptions, and queries keep serving.
func (e *Engine) Degraded() (bool, string) { return e.DB.Degraded() }

// Recover exits degraded mode: the WAL tail is re-verified (truncating
// anything never acknowledged), fsynced, and mutations resume. If the
// device still refuses writes the engine stays degraded and the error
// is returned. On a healthy engine this is a no-op.
func (e *Engine) Recover() error { return e.DB.Recover() }

// memProbeInterval bounds how often Overloaded pays for a real
// runtime.ReadMemStats; between probes the cached value is used.
const memProbeInterval = 250 * time.Millisecond

// Overloaded reports whether an armed ingest watermark is exceeded —
// the signal the server uses to shed low-priority publishers before
// blocking backpressure turns into collapse. Always false when no
// watermark is configured.
func (e *Engine) Overloaded() (bool, string) {
	if e.shedHighWater > 0 && e.pipeline != nil {
		depth, capacity := 0, 0
		for _, s := range e.pipeline.shards {
			depth += len(s.ch)
			capacity += cap(s.ch)
		}
		if capacity > 0 && float64(depth) > e.shedHighWater*float64(capacity) {
			return true, fmt.Sprintf("shard queues %d/%d over high water %.2f", depth, capacity, e.shedHighWater)
		}
	}
	if e.shedMemBytes > 0 {
		if heap := e.heapInUse(); heap > e.shedMemBytes {
			return true, fmt.Sprintf("heap %d bytes over limit %d", heap, e.shedMemBytes)
		}
	}
	return false, ""
}

// heapInUse returns the Go heap-in-use, probing the runtime at most
// every memProbeInterval so overload checks stay cheap per event.
func (e *Engine) heapInUse() uint64 {
	now := time.Now().UnixNano()
	last := e.memCheckedAt.Load()
	if now-last < int64(memProbeInterval) {
		return e.memHeapInUse.Load()
	}
	if !e.memCheckedAt.CompareAndSwap(last, now) {
		return e.memHeapInUse.Load() // another goroutine is probing
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.memHeapInUse.Store(ms.HeapInuse)
	return ms.HeapInuse
}

// Health is a point-in-time operational snapshot, the substrate for
// the HEALTH wire verb and the gateway's /healthz and /readyz.
type Health struct {
	Degraded       bool
	DegradedCause  string
	Overloaded     bool
	OverloadReason string
	ReadOnly       bool
	Durable        bool
	// LastApplied is the highest WAL LSN logged and applied; NextLSN is
	// the next LSN the log will assign. Both 0 when volatile.
	LastApplied uint64
	NextLSN     uint64
	// QueueDepths is per-shard ingest buffer occupancy (nil when the
	// engine is synchronous); QueueCap is the per-shard capacity.
	QueueDepths []int
	QueueCap    int
	Ingested    uint64
	Dropped     uint64
}

// Health assembles the engine-level health snapshot. Server-level
// fields (role, connections, slow consumers) are layered on by the
// wire handler.
func (e *Engine) Health() Health {
	h := Health{
		ReadOnly:    e.ReadOnly(),
		Durable:     e.DB.Durable(),
		QueueDepths: e.QueueDepths(),
		Ingested:    e.Ingested(),
		Dropped:     e.Dropped(),
	}
	h.Degraded, h.DegradedCause = e.Degraded()
	h.Overloaded, h.OverloadReason = e.Overloaded()
	if e.pipeline != nil && len(e.pipeline.shards) > 0 {
		h.QueueCap = cap(e.pipeline.shards[0].ch)
	}
	if w := e.DB.WAL(); w != nil {
		h.LastApplied = e.DB.LastApplied()
		h.NextLSN = w.NextLSN()
	}
	return h
}
