package core

import (
	"errors"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/pubsub"
	"eventdb/internal/query"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

func watchEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	schema, err := storage.NewSchema("stock", []storage.Column{
		{Name: "sku", Kind: val.KindString, NotNull: true},
		{Name: "qty", Kind: val.KindInt, NotNull: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DB.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestWatchScheduler registers a watch and sees the baseline and a
// subsequent change arrive through the ingest path without any manual
// polling.
func TestWatchScheduler(t *testing.T) {
	eng := watchEngine(t)
	if _, err := eng.DB.Insert("stock", map[string]val.Value{
		"sku": val.String("w"), "qty": val.Int(1),
	}); err != nil {
		t.Fatal(err)
	}

	events := make(chan *event.Event, 16)
	if err := eng.Subscribe("watcher", "test", "query = 'low'", func(d pubsub.Delivery) {
		events <- d.Event
	}); err != nil {
		t.Fatal(err)
	}

	q := query.New("stock").Where("qty < 5").Select("sku", "qty")
	if err := eng.StartWatch("low", q, time.Millisecond, "sku"); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartWatch("low", q, time.Millisecond, "sku"); !errors.Is(err, ErrWatchExists) {
		t.Fatalf("duplicate watch error = %v", err)
	}
	if got := eng.Watches(); len(got) != 1 || got[0] != "low" {
		t.Fatalf("watches = %v", got)
	}

	// Baseline: the existing row reports as added.
	ev := recvEvent(t, events)
	if ev.Type != "query.low.added" {
		t.Fatalf("baseline event = %q", ev.Type)
	}

	// A later commit shows up as a diff on a subsequent poll.
	if _, err := eng.DB.Insert("stock", map[string]val.Value{
		"sku": val.String("g"), "qty": val.Int(2),
	}); err != nil {
		t.Fatal(err)
	}
	ev = recvEvent(t, events)
	if ev.Type != "query.low.added" {
		t.Fatalf("diff event = %q", ev.Type)
	}
	if sku, _ := ev.Get("new_sku"); sku.String() != `"g"` {
		t.Fatalf("diff sku = %s", sku)
	}

	// StopWatch halts polling: no event for a change made after it.
	if err := eng.StopWatch("low"); err != nil {
		t.Fatal(err)
	}
	if err := eng.StopWatch("low"); !errors.Is(err, ErrNoWatch) {
		t.Fatalf("double stop error = %v", err)
	}
	if _, err := eng.DB.Insert("stock", map[string]val.Value{
		"sku": val.String("x"), "qty": val.Int(3),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("event after StopWatch: %s", ev.Type)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestWatchStopsOnClose proves Close halts every poll loop: no watch
// goroutine may outlive the engine it ingests into.
func TestWatchStopsOnClose(t *testing.T) {
	eng := watchEngine(t)
	q := query.New("stock").Select("sku")
	for _, name := range []string{"w1", "w2"} {
		if err := eng.StartWatch(name, q, time.Millisecond, "sku"); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Watches(); len(got) != 0 {
		t.Fatalf("watches after close = %v", got)
	}
}

func recvEvent(t *testing.T, ch <-chan *event.Event) *event.Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
		return nil
	}
}
