package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/journal"
	"eventdb/internal/pubsub"
	"eventdb/internal/query"
	"eventdb/internal/queue"
	"eventdb/internal/rules"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

func open(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func readingsSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s, err := storage.NewSchema("readings", []storage.Column{
		{Name: "meter", Kind: val.KindString, NotNull: true},
		{Name: "kwh", Kind: val.KindFloat, NotNull: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIngestRulesAndSubscriptions(t *testing.T) {
	e := open(t, Config{})
	var ruleFired, delivered int
	e.AddRule("hot", "temp > 30", 0, func(*event.Event, *rules.Rule) { ruleFired++ })
	e.Subscribe("s1", "ops", "temp > 30", func(pubsub.Delivery) { delivered++ })

	if err := e.Ingest(event.New("reading", map[string]any{"temp": 35})); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(event.New("reading", map[string]any{"temp": 20})); err != nil {
		t.Fatal(err)
	}
	if ruleFired != 1 || delivered != 1 {
		t.Errorf("fired=%d delivered=%d", ruleFired, delivered)
	}
	if e.Ingested() != 2 {
		t.Errorf("ingested = %d", e.Ingested())
	}
	if err := e.Ingest(nil); err == nil {
		t.Error("nil event accepted")
	}
}

func TestCaptureTableTriggerPath(t *testing.T) {
	e := open(t, Config{})
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	var captured []*event.Event
	e.Subscribe("cap", "x", "$type LIKE 'db.readings.%'", func(d pubsub.Delivery) {
		captured = append(captured, d.Event)
	})
	if err := e.CaptureTable("readings"); err != nil {
		t.Fatal(err)
	}
	e.DB.Insert("readings", map[string]val.Value{
		"meter": val.String("m1"), "kwh": val.Float(5),
	})
	if len(captured) != 1 || captured[0].Type != "db.readings.insert" {
		t.Fatalf("captured = %v", captured)
	}
	if v, _ := captured[0].Get("new_kwh"); !val.Equal(v, val.Float(5)) {
		t.Errorf("new_kwh = %v", v)
	}
}

func TestJournalCapturePath(t *testing.T) {
	e := open(t, Config{Dir: t.TempDir()})
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	var captured atomic.Int64
	e.Subscribe("cap", "x", "$type LIKE 'journal.readings.%'", func(pubsub.Delivery) {
		captured.Add(1)
	})
	stop := e.TailJournal(journal.Filter{Tables: []string{"readings"}}, 64)
	defer stop()
	e.DB.Insert("readings", map[string]val.Value{
		"meter": val.String("m1"), "kwh": val.Float(5),
	})
	deadline := time.After(2 * time.Second)
	for captured.Load() < 1 {
		select {
		case <-deadline:
			t.Fatal("journal capture timed out")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestQueryCapturePath(t *testing.T) {
	e := open(t, Config{})
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	var captured []*event.Event
	e.Subscribe("cap", "x", "$type LIKE 'query.hot.%'", func(d pubsub.Delivery) {
		captured = append(captured, d.Event)
	})
	w := e.WatchQuery("hot", query.New("readings").Where("kwh > 10").Select("meter", "kwh"), "meter")
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	e.DB.Insert("readings", map[string]val.Value{
		"meter": val.String("m1"), "kwh": val.Float(50),
	})
	n, err := w.Poll()
	if err != nil || n != 1 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if len(captured) != 1 || captured[0].Type != "query.hot.added" {
		t.Fatalf("captured = %v", captured)
	}
}

func TestQueueSubscriptionEndToEnd(t *testing.T) {
	e := open(t, Config{})
	if _, err := e.CreateQueue("alerts", queue.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := e.SubscribeQueue("s", "ops", "sev >= 2", "alerts", 1); err != nil {
		t.Fatal(err)
	}
	if err := e.SubscribeQueue("s2", "ops", "", "missing", 0); err == nil {
		t.Error("subscribe to missing queue accepted")
	}
	e.Ingest(event.New("alarm", map[string]any{"sev": 3}))
	e.Ingest(event.New("alarm", map[string]any{"sev": 1}))
	q, _ := e.Queues.Get("alerts")
	msg, ok, err := q.Dequeue("ops")
	if err != nil || !ok {
		t.Fatalf("dequeue: %v %v", ok, err)
	}
	if v, _ := msg.Event.Get("sev"); !val.Equal(v, val.Int(3)) {
		t.Errorf("sev = %v", v)
	}
	if _, ok, _ := q.Dequeue("ops"); ok {
		t.Error("filtered event was enqueued")
	}
}

func TestSecurityAndAudit(t *testing.T) {
	e := open(t, Config{Secure: true, AuditTable: "audit"})
	// Deny by default.
	ev := event.New("alarm", map[string]any{"sev": 1})
	if err := e.IngestAs("mallory", ev); err == nil {
		t.Fatal("unauthorized ingest accepted")
	}
	if err := e.SubscribeAs("mallory", "s", "", func(pubsub.Delivery) {}); err == nil {
		t.Fatal("unauthorized subscribe accepted")
	}
	// Grant and retry.
	e.Guard.Grant("alice", "publish", "events/alarm")
	e.Guard.Grant("alice", "subscribe", "subscriptions")
	if err := e.SubscribeAs("alice", "s", "", func(pubsub.Delivery) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestAs("alice", ev); err != nil {
		t.Fatal(err)
	}
	// Audit trail recorded both denials and grants.
	entries, err := e.Trail.Entries("", "")
	if err != nil {
		t.Fatal(err)
	}
	actions := map[string]int{}
	for _, en := range entries {
		actions[en.Action]++
	}
	if actions["publish.denied"] != 1 || actions["subscribe.denied"] != 1 ||
		actions["publish"] != 1 || actions["subscribe"] != 1 {
		t.Errorf("audit actions = %v", actions)
	}
}

func TestEngineDurability(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.DB.CreateTable(readingsSchema(t))
	e.CreateQueue("alerts", queue.Config{})
	q, _ := e.Queues.Get("alerts")
	q.Enqueue(event.New("alarm", map[string]any{"sev": 9}), queue.EnqueueOptions{})
	e.DB.Insert("readings", map[string]val.Value{
		"meter": val.String("m1"), "kwh": val.Float(1),
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl, ok := e2.DB.Table("readings")
	if !ok || tbl.Len() != 1 {
		t.Error("table lost across restart")
	}
	q2, err := e2.Queues.Open("alerts", queue.Config{})
	if err != nil {
		t.Fatal(err)
	}
	msg, ok, err := q2.Dequeue("ops")
	if err != nil || !ok {
		t.Fatalf("message lost across restart: %v %v", ok, err)
	}
	if v, _ := msg.Event.Get("sev"); !val.Equal(v, val.Int(9)) {
		t.Errorf("sev = %v", v)
	}
}

func TestMetricsExposed(t *testing.T) {
	e := open(t, Config{})
	e.Ingest(event.New("x", nil))
	found := false
	for _, line := range e.Metrics.Snapshot() {
		if line == "events.in 1" {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics = %v", e.Metrics.Snapshot())
	}
}

func TestEnsureQueueIdempotentAndRecovering(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.EnsureQueue("orders", queue.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := eng.EnsureQueue("orders", queue.Config{})
	if err != nil || q2 != q {
		t.Fatalf("second EnsureQueue: %v (same=%v)", err, q2 == q)
	}
	if _, err := q.Enqueue(event.New("o", map[string]any{"n": 1}), queue.EnqueueOptions{}); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// After a restart the backing table is recovered; EnsureQueue
	// attaches instead of failing on create.
	eng2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	q3, err := eng2.EnsureQueue("orders", queue.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if msg, ok, err := q3.Dequeue("c"); err != nil || !ok {
		t.Fatalf("recovered dequeue: %v %v", ok, err)
	} else if err := q3.Ack(msg.Receipt); err != nil {
		t.Fatal(err)
	}
}

func TestReplayQueueBackfillsFromJournal(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.EnsureQueue("orders", queue.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SubscribeQueue("qsub.orders", "wire", "price > 100", "orders", 0); err != nil {
		t.Fatal(err)
	}
	const published = 10
	wantStaged := 0
	for i := 0; i < published; i++ {
		price := float64(i * 30)
		if price > 100 {
			wantStaged++
		}
		if err := eng.Ingest(event.New("trade", map[string]any{"sym": "A", "price": price})); err != nil {
			t.Fatal(err)
		}
	}
	// Consume and ack everything: the queue table is empty, but the
	// journal still remembers every staged message.
	q, _ := eng.Queues.Get("orders")
	for {
		msg, ok, err := q.Dequeue("c")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := q.Ack(msg.Receipt); err != nil {
			t.Fatal(err)
		}
	}

	var replayed []*event.Event
	var lastLSN uint64
	next, n, err := eng.ReplayQueue("orders", 0, func(ev *event.Event, lsn uint64, msgID int64) error {
		if lsn < lastLSN {
			t.Errorf("replay out of order: lsn %d after %d", lsn, lastLSN)
		}
		lastLSN = lsn
		if msgID == 0 {
			t.Error("replay with msgID 0")
		}
		replayed = append(replayed, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != wantStaged || len(replayed) != wantStaged {
		t.Fatalf("replayed %d (%d events), want %d", n, len(replayed), wantStaged)
	}
	for _, ev := range replayed {
		v, _ := ev.Get("price")
		f, _ := v.AsFloat()
		if f <= 100 {
			t.Errorf("replayed event with price %v never matched the binding", f)
		}
		if ev.Type != "trade" {
			t.Errorf("replayed type = %q, want the original event back", ev.Type)
		}
	}
	if next <= lastLSN {
		t.Errorf("next LSN %d not past last replayed %d", next, lastLSN)
	}
	// Resuming from next replays nothing new.
	_, n2, err := eng.ReplayQueue("orders", next, func(*event.Event, uint64, int64) error { return nil })
	if err != nil || n2 != 0 {
		t.Errorf("resume replayed %d, err %v", n2, err)
	}
}

func TestReplayQueueNotDurable(t *testing.T) {
	eng := open(t, Config{})
	if _, err := eng.EnsureQueue("q", queue.Config{}); err != nil {
		t.Fatal(err)
	}
	_, _, err := eng.ReplayQueue("q", 0, func(*event.Event, uint64, int64) error { return nil })
	if err == nil {
		t.Fatal("replay on a volatile engine succeeded")
	}
	if !errors.Is(err, journal.ErrNotDurable) {
		t.Errorf("err = %v, want ErrNotDurable", err)
	}
}
