package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/pubsub"
	"eventdb/internal/rules"
	"eventdb/internal/val"
)

func mkEvent(typ string, seq int) *event.Event {
	return event.New(typ, map[string]any{"seq": seq})
}

func TestIngestBatchSync(t *testing.T) {
	e := open(t, Config{})
	var fired, delivered int
	e.AddRule("hot", "seq >= 5", 0, func(*event.Event, *rules.Rule) { fired++ })
	e.Subscribe("s", "ops", "seq >= 5", func(pubsub.Delivery) { delivered++ })

	batch := make([]*event.Event, 10)
	for i := range batch {
		batch[i] = mkEvent("reading", i)
	}
	if err := e.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if fired != 5 || delivered != 5 {
		t.Errorf("fired=%d delivered=%d, want 5/5", fired, delivered)
	}
	if e.Ingested() != 10 {
		t.Errorf("ingested = %d", e.Ingested())
	}
	if err := e.IngestBatch([]*event.Event{nil}); err == nil {
		t.Error("nil event accepted")
	}
}

// TestConcurrentAsyncIngestExactDelivery fires Ingest and IngestBatch
// from many goroutines at an async engine and asserts nothing is lost
// or duplicated under BlockOnFull.
func TestConcurrentAsyncIngestExactDelivery(t *testing.T) {
	e := open(t, Config{Shards: 4, ShardBuffer: 64})
	var delivered atomic.Int64
	if err := e.Subscribe("all", "ops", "", func(pubsub.Delivery) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const perG = 500 // half via Ingest, half via IngestBatch
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			typ := fmt.Sprintf("type%d", g)
			for i := 0; i < perG/2; i++ {
				if err := e.Ingest(mkEvent(typ, i)); err != nil {
					t.Error(err)
					return
				}
			}
			batch := make([]*event.Event, perG/2)
			for i := range batch {
				batch[i] = mkEvent(typ, perG/2+i)
			}
			if err := e.IngestBatch(batch); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	e.Flush()

	const want = goroutines * perG
	if got := delivered.Load(); got != want {
		t.Errorf("delivered = %d, want %d", got, want)
	}
	if got := e.Ingested(); got != want {
		t.Errorf("ingested = %d, want %d", got, want)
	}
	if e.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0 under BlockOnFull", e.Dropped())
	}
	if e.Shards() != 4 {
		t.Errorf("shards = %d", e.Shards())
	}
}

// TestAsyncPerShardOrdering checks the pipeline's ordering contract:
// events sharing a shard key (here, the event type) are evaluated in
// arrival order, even with many producers and shards.
func TestAsyncPerShardOrdering(t *testing.T) {
	e := open(t, Config{Shards: 8, ShardBuffer: 32})
	var mu sync.Mutex
	lastSeq := map[string]int64{}
	violations := 0
	if err := e.Subscribe("all", "ops", "", func(d pubsub.Delivery) {
		seqV, _ := d.Event.Get("seq")
		seq, _ := seqV.AsInt()
		mu.Lock()
		if prev, ok := lastSeq[d.Event.Type]; ok && seq != prev+1 {
			violations++
		}
		lastSeq[d.Event.Type] = seq
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const keys = 24
	const perKey = 400
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			typ := fmt.Sprintf("key%d", k)
			for i := 0; i < perKey; i += 8 {
				batch := make([]*event.Event, 8)
				for j := range batch {
					batch[j] = mkEvent(typ, i+j)
				}
				if err := e.IngestBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	e.Flush()

	mu.Lock()
	defer mu.Unlock()
	if violations != 0 {
		t.Errorf("%d per-key ordering violations", violations)
	}
	if len(lastSeq) != keys {
		t.Errorf("saw %d keys, want %d", len(lastSeq), keys)
	}
	for typ, last := range lastSeq {
		if last != perKey-1 {
			t.Errorf("%s ended at seq %d, want %d", typ, last, perKey-1)
		}
	}
}

// TestDropOnFull verifies the lossy backpressure policy: a stalled
// subscriber fills the one-slot shard buffer and overflow is counted,
// not blocked on.
func TestDropOnFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	e := open(t, Config{Shards: 1, ShardBuffer: 1, Backpressure: DropOnFull})
	var delivered atomic.Int64
	e.Subscribe("slow", "ops", "", func(pubsub.Delivery) {
		once.Do(func() { close(started) })
		<-release
		delivered.Add(1)
	})

	if err := e.Ingest(mkEvent("x", 0)); err != nil {
		t.Fatal(err)
	}
	<-started // worker is now stalled inside the handler
	const extra = 50
	for i := 1; i <= extra; i++ {
		if err := e.Ingest(mkEvent("x", i)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Dropped() == 0 {
		t.Error("no drops despite stalled shard and full buffer")
	}
	close(release)
	e.Flush()
	if got := delivered.Load() + int64(e.Dropped()); got != extra+1 {
		t.Errorf("delivered(%d) + dropped(%d) = %d, want %d",
			delivered.Load(), e.Dropped(), got, extra+1)
	}
}

// TestCloseDrainsInFlight asserts Close is a lossless flush under
// BlockOnFull: everything accepted before Close is evaluated.
func TestCloseDrainsInFlight(t *testing.T) {
	e, err := Open(Config{Shards: 2, ShardBuffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	e.Subscribe("all", "ops", "", func(pubsub.Delivery) {
		time.Sleep(10 * time.Microsecond) // keep a backlog alive at Close
		delivered.Add(1)
	})
	const n = 300
	for i := 0; i < n; i++ {
		if err := e.Ingest(mkEvent(fmt.Sprintf("t%d", i%5), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != n {
		t.Errorf("delivered = %d, want %d", got, n)
	}
	if err := e.Ingest(mkEvent("late", 0)); err != ErrClosed {
		t.Errorf("ingest after close: err = %v, want ErrClosed", err)
	}
}

// TestReentrantCaptureDoesNotDeadlock exercises the hazardous shape:
// a rule action on a shard goroutine writes to a captured table, whose
// trigger re-enters the ingest path — with a tiny buffer that would
// wedge a blocking re-entrant send. The capture path's non-blocking
// fallback must keep the pipeline live and lose nothing.
func TestReentrantCaptureDoesNotDeadlock(t *testing.T) {
	e := open(t, Config{Shards: 1, ShardBuffer: 2})
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.CaptureTable("readings"); err != nil {
		t.Fatal(err)
	}
	var captured atomic.Int64
	e.Subscribe("cap", "x", "$type = 'db.readings.insert'", func(pubsub.Delivery) {
		captured.Add(1)
	})
	// Every "reading" event inserts a row; the trigger turns that into
	// a "db.readings.insert" event on the same (only) shard.
	err := e.AddRule("persist", "$type = 'reading'", 0, func(ev *event.Event, _ *rules.Rule) {
		if _, err := e.DB.Insert("readings", map[string]val.Value{
			"meter": val.String("m"), "kwh": val.Float(1),
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := e.Ingest(mkEvent("reading", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("re-entrant capture deadlocked the pipeline")
	}
	e.Flush()
	// Inline-fallback capture events are evaluated before their
	// triggering event's shard slot frees, so after Flush every
	// capture must have been delivered.
	if got := captured.Load(); got != n {
		t.Errorf("captured %d of %d trigger events", got, n)
	}
}

// TestCloseDrainPreservesCaptureCascades: events still in shard
// buffers at Close whose rule actions write to captured tables must
// still produce (and evaluate) their derived capture events — the
// pipeline drains before trigger capture detaches.
func TestCloseDrainPreservesCaptureCascades(t *testing.T) {
	e, err := Open(Config{Shards: 2, ShardBuffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DB.CreateTable(readingsSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.CaptureTable("readings"); err != nil {
		t.Fatal(err)
	}
	var captured atomic.Int64
	e.Subscribe("cap", "x", "$type = 'db.readings.insert'", func(pubsub.Delivery) {
		captured.Add(1)
	})
	e.AddRule("persist", "$type = 'reading'", 0, func(*event.Event, *rules.Rule) {
		if _, err := e.DB.Insert("readings", map[string]val.Value{
			"meter": val.String("m"), "kwh": val.Float(1),
		}); err != nil {
			t.Error(err)
		}
	})
	const n = 100
	for i := 0; i < n; i++ {
		if err := e.Ingest(mkEvent("reading", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: most events are still buffered. Every one of
	// their trigger cascades must survive the drain.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := captured.Load(); got != n {
		t.Errorf("captured %d of %d cascade events across Close", got, n)
	}
}

// TestIngestSyncBypassesPipeline: IngestSync evaluates inline even on
// an async engine, so callers can opt into completion-on-return.
func TestIngestSyncBypassesPipeline(t *testing.T) {
	e := open(t, Config{Shards: 2})
	var delivered atomic.Int64
	e.Subscribe("all", "ops", "", func(pubsub.Delivery) { delivered.Add(1) })
	if err := e.IngestSync(mkEvent("x", 1)); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != 1 {
		t.Errorf("delivered = %d before any flush, want 1", delivered.Load())
	}
}
