// Sharded, batched, asynchronous ingestion.
//
// The paper's scalability story (§2.2, §3) rests on decoupling event
// arrival from evaluation: staged queues absorb bursts while indexed
// rule sets and subscriptions evaluate behind them. The pipeline is
// that idea applied to the engine's own front door. Events are
// hash-partitioned by a shard key (event type by default) across N
// worker shards; each shard drains a bounded buffer and runs the
// rules→pub/sub flow with per-shard match scratch, so throughput
// scales with cores while events that share a key keep their order.
//
//	Ingest/IngestBatch
//	        │ fnv32a(shardKey) % N
//	   ┌────┴─────┬──────────┐
//	   ▼          ▼          ▼
//	[shard 0]  [shard 1] … [shard N-1]   bounded chans (block|drop)
//	   │          │          │
//	   ▼          ▼          ▼
//	rules→pub/sub per shard, micro-batched, scratch reused
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/metrics"
)

// Backpressure selects what publishing into a full shard buffer does.
type Backpressure int

const (
	// BlockOnFull (the default) blocks the publisher until the shard
	// drains — lossless, propagates pressure upstream.
	BlockOnFull Backpressure = iota
	// DropOnFull drops the event and counts it in the shard's drops
	// counter — bounded latency, lossy under sustained overload.
	DropOnFull
)

// String names the policy for logs and flags.
func (b Backpressure) String() string {
	if b == DropOnFull {
		return "drop"
	}
	return "block"
}

// ErrClosed is returned by ingestion after Close.
var ErrClosed = errors.New("core: engine closed")

const (
	defaultShardBuffer = 1024
	// shardBatch caps a worker's opportunistic micro-batch: after a
	// blocking receive it drains up to this many more queued events
	// before evaluating, amortizing scratch and metric updates.
	shardBatch = 64
)

// pipeline fans ingested events out to shard workers.
type pipeline struct {
	eng    *Engine
	keyFn  func(*event.Event) string
	policy Backpressure
	shards []*shard

	mu     sync.RWMutex // closed excludes enqueue
	closed bool
	wg     sync.WaitGroup
}

// shard is one worker: a bounded buffer, its drain goroutine, and its
// operational metrics.
type shard struct {
	idx     int
	ch      chan *event.Event
	pending atomic.Int64 // accepted but not yet processed

	depth     *metrics.Gauge   // current buffer occupancy
	drops     *metrics.Counter // events lost to DropOnFull
	processed *metrics.Counter // events fully evaluated
}

func newPipeline(e *Engine, cfg Config) *pipeline {
	buf := cfg.ShardBuffer
	if buf <= 0 {
		buf = defaultShardBuffer
	}
	keyFn := cfg.ShardKey
	if keyFn == nil {
		keyFn = func(ev *event.Event) string { return ev.Type }
	}
	p := &pipeline{eng: e, keyFn: keyFn, policy: cfg.Backpressure}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			idx:       i,
			ch:        make(chan *event.Event, buf),
			depth:     e.Metrics.Gauge(fmt.Sprintf("pipeline.shard%d.depth", i)),
			drops:     e.Metrics.Counter(fmt.Sprintf("pipeline.shard%d.drops", i)),
			processed: e.Metrics.Counter(fmt.Sprintf("pipeline.shard%d.processed", i)),
		}
		p.shards = append(p.shards, s)
		p.wg.Add(1)
		go p.run(s)
	}
	return p
}

// shardFor picks the worker for an event: FNV-1a over the shard key,
// so equal keys always land on the same (single-goroutine) shard and
// therefore process in arrival order.
func (p *pipeline) shardFor(ev *event.Event) *shard {
	key := p.keyFn(ev)
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return p.shards[h%uint32(len(p.shards))]
}

// tryEnqueue is a non-blocking enqueue: it reports whether the event
// was accepted, never waiting on a full buffer regardless of policy.
// The capture paths use it to stay deadlock-free when re-entered from
// a shard goroutine.
func (p *pipeline) tryEnqueue(ev *event.Event) (bool, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false, ErrClosed
	}
	s := p.shardFor(ev)
	select {
	case s.ch <- ev:
		s.pending.Add(1)
		s.depth.Set(int64(len(s.ch)))
		return true, nil
	default:
		return false, nil
	}
}

// enqueue hands one event to its shard, applying the backpressure
// policy. A nil error means the event was accepted (or, under
// DropOnFull, counted as dropped).
func (p *pipeline) enqueue(ev *event.Event) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	s := p.shardFor(ev)
	if p.policy == DropOnFull {
		select {
		case s.ch <- ev:
			s.pending.Add(1)
			s.depth.Set(int64(len(s.ch)))
		default:
			s.drops.Inc()
			p.eng.Metrics.Counter("pipeline.drops").Inc()
		}
		return nil
	}
	// BlockOnFull: a blocked sender holds only the read lock, and the
	// shard keeps draining until its channel is closed — which close()
	// can only do after every sender releases that lock — so shutdown
	// cannot deadlock against backpressure.
	s.pending.Add(1)
	s.ch <- ev
	s.depth.Set(int64(len(s.ch)))
	return nil
}

// run is a shard's drain loop: blocking receive, opportunistic drain
// into a micro-batch, then one evaluation pass with reused scratch.
// The loop exits when the channel is closed and fully drained, so
// close() doubles as a lossless flush.
func (p *pipeline) run(s *shard) {
	defer p.wg.Done()
	matcher := p.eng.Rules.NewMatcher()
	pub := p.eng.Broker.NewPublisher()
	batch := make([]*event.Event, 0, shardBatch)
	for ev := range s.ch {
		batch = drainInto(s.ch, append(batch[:0], ev))
		s.depth.Set(int64(len(s.ch)))
		start := time.Now()
		var delivered uint64
		for _, ev := range batch {
			n, err := p.eng.evalEvent(ev, matcher, pub)
			if err != nil {
				p.eng.Metrics.Counter("ingest.errors").Inc()
				continue
			}
			p.eng.cepObserve(s.idx, ev)
			delivered += uint64(n)
		}
		// Amortize the shared counters across the micro-batch; pending
		// is released last so Flush observes the counts already applied.
		nb := uint64(len(batch))
		p.eng.ingestCount.Add(nb)
		p.eng.Metrics.Counter("events.in").Add(nb)
		p.eng.Metrics.Counter("events.delivered").Add(delivered)
		s.processed.Add(nb)
		p.eng.Metrics.Histogram("pipeline.batch.latency").Observe(time.Since(start))
		s.pending.Add(-int64(nb))
	}
}

// drainInto appends immediately available events from ch to batch —
// up to its capacity, never blocking — and returns the grown batch.
// Shard workers and the journal tail share it to form micro-batches.
func drainInto(ch <-chan *event.Event, batch []*event.Event) []*event.Event {
	for len(batch) < cap(batch) {
		select {
		case ev, ok := <-ch:
			if !ok {
				return batch
			}
			batch = append(batch, ev)
		default:
			return batch
		}
	}
	return batch
}

// flush blocks until every event accepted before the call has been
// processed. Concurrent producers can keep shards busy past the
// snapshot; flush only guarantees the backlog it observed. Polling
// backs off exponentially so a deep backlog doesn't burn a core.
func (p *pipeline) flush() {
	for _, s := range p.shards {
		wait := 50 * time.Microsecond
		for s.pending.Load() > 0 {
			time.Sleep(wait)
			if wait < 5*time.Millisecond {
				wait *= 2
			}
		}
	}
}

// close stops intake, drains every shard's in-flight events, and waits
// for the workers to exit. Idempotent.
func (p *pipeline) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, s := range p.shards {
		close(s.ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
	for _, s := range p.shards {
		s.depth.Set(0)
	}
}

// Flush waits until all events accepted by the async pipeline so far
// have been fully evaluated. A no-op for synchronous engines.
func (e *Engine) Flush() {
	if e.pipeline != nil {
		e.pipeline.flush()
	}
}

// Shards reports the pipeline width (0 when the engine is synchronous).
func (e *Engine) Shards() int {
	if e.pipeline == nil {
		return 0
	}
	return len(e.pipeline.shards)
}

// QueueDepths returns each shard's current buffer occupancy, for
// operational visibility; nil when the engine is synchronous.
func (e *Engine) QueueDepths() []int {
	if e.pipeline == nil {
		return nil
	}
	out := make([]int, len(e.pipeline.shards))
	for i, s := range e.pipeline.shards {
		out[i] = len(s.ch)
	}
	return out
}

// Dropped reports the total number of events dropped by DropOnFull
// backpressure across all shards.
func (e *Engine) Dropped() uint64 {
	return e.Metrics.Counter("pipeline.drops").Value()
}
