package core

import (
	"testing"

	"eventdb/internal/raceflag"
)

// TestAllocsHealthGates is the zero-alloc guard for the self-protection
// checks that sit on the per-command dispatch path: every mutating verb
// consults Degraded(), and every low-priority publish consults
// Overloaded(). Both must allocate nothing in the common (healthy, not
// overloaded) case, with both watermarks armed so the real probe code
// runs — otherwise the health plane itself would tax the ingest path it
// protects.
func TestAllocsHealthGates(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	eng, err := Open(Config{
		Shards:          2,
		ShedHighWater:   0.99,
		ShedMemoryBytes: 1 << 62, // armed, never exceeded
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Warm the cached heap probe so the periodic ReadMemStats refresh
	// is not attributed to a measured run.
	eng.Overloaded()

	allocs := testing.AllocsPerRun(500, func() {
		if deg, _ := eng.Degraded(); deg {
			t.Fatal("engine unexpectedly degraded")
		}
		if over, _ := eng.Overloaded(); over {
			t.Fatal("engine unexpectedly overloaded")
		}
	})
	if allocs != 0 {
		t.Errorf("health gates allocate %v per check, want 0", allocs)
	}
}
