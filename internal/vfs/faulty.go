package vfs

import (
	"io/fs"
	"os"
	"sync"
	"time"
)

// Faulty wraps an FS and injects failures on a script: writes begin
// failing (with an optional short write) once a global byte offset is
// reached, fsyncs fail after a countdown, and writes can be slowed to
// simulate saturated disks. All knobs are safe to flip concurrently
// with IO, and Heal clears every armed fault so recovery paths can be
// exercised in the same process.
//
// The write offset is global across all files opened through this FS:
// tests arm a fault at BytesWritten()+delta to tear a record at an
// exact byte boundary regardless of how the writer batches.
type Faulty struct {
	inner FS

	mu        sync.Mutex
	written   int64 // bytes successfully written through this FS
	syncs     int64 // sync attempts through this FS
	writeTrip int64 // global offset at which writes start failing; -1 disarmed
	writeErr  error
	syncTrip  int64 // sync attempts allowed before failing; -1 disarmed
	syncErr   error
	latency   time.Duration
}

// NewFaulty wraps inner (nil means the real filesystem) with no faults
// armed.
func NewFaulty(inner FS) *Faulty {
	return &Faulty{inner: Default(inner), writeTrip: -1, syncTrip: -1}
}

// FailWritesAt arms a write fault: the write that would carry the
// global byte stream past offset is cut short at exactly that boundary
// and returns err; every later write fails outright. Pass the current
// BytesWritten() to fail the very next byte.
func (f *Faulty) FailWritesAt(offset int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeTrip = offset
	f.writeErr = err
}

// FailSyncsAfter arms a sync fault: the next n Sync calls succeed and
// every one after that returns err. n=0 fails the next sync.
func (f *Faulty) FailSyncsAfter(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncTrip = f.syncs + int64(n)
	f.syncErr = err
}

// SetWriteLatency delays every write by d, simulating a saturated or
// throttled device.
func (f *Faulty) SetWriteLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Heal disarms every fault; subsequent IO goes straight through. The
// byte/sync counters are preserved.
func (f *Faulty) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeTrip = -1
	f.writeErr = nil
	f.syncTrip = -1
	f.syncErr = nil
	f.latency = 0
}

// BytesWritten reports the total bytes successfully written through
// this FS since creation.
func (f *Faulty) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Syncs reports the number of Sync attempts through this FS.
func (f *Faulty) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *Faulty) Remove(name string) error                     { return f.inner.Remove(name) }
func (f *Faulty) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error)   { return f.inner.ReadDir(name) }
func (f *Faulty) Stat(name string) (fs.FileInfo, error)        { return f.inner.Stat(name) }
func (f *Faulty) Truncate(name string, size int64) error       { return f.inner.Truncate(name, size) }

type faultyFile struct {
	File
	fs *Faulty
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	delay := ff.fs.latency
	allow := len(p)
	var armed error
	if ff.fs.writeTrip >= 0 {
		budget := ff.fs.writeTrip - ff.fs.written
		if budget < int64(len(p)) {
			armed = ff.fs.writeErr
			if budget < 0 {
				budget = 0
			}
			allow = int(budget)
		}
	}
	ff.fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	var n int
	var err error
	if allow > 0 {
		n, err = ff.File.Write(p[:allow])
	}
	ff.fs.mu.Lock()
	ff.fs.written += int64(n)
	ff.fs.mu.Unlock()
	if err == nil && armed != nil {
		err = armed
	}
	return n, err
}

func (ff *faultyFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.syncs++
	var armed error
	if ff.fs.syncTrip >= 0 && ff.fs.syncs > ff.fs.syncTrip {
		armed = ff.fs.syncErr
	}
	ff.fs.mu.Unlock()
	if armed != nil {
		return armed
	}
	return ff.File.Sync()
}
