// Package vfs abstracts the handful of filesystem operations the
// durability paths (wal, journal checkpoints, columnar persistence)
// perform, so tests can inject faults — ENOSPC, short/torn writes,
// fsync errors, latency — at exact byte offsets. Production code uses
// OS, a thin passthrough to the os package; tests wrap it in Faulty.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the engine's durability paths need.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync commits the file's contents to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the engine writes through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
}

// OS is the production FS: every call is the corresponding os.* call.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// Default returns fsys if non-nil, else the real filesystem. Packages
// taking an optional FS in their Options call this once at open.
func Default(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
