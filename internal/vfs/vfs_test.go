package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultyShortWriteAtOffset(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(nil)
	f, err := fsys.OpenFile(filepath.Join(dir, "a"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("unarmed write: %v", err)
	}
	if got := fsys.BytesWritten(); got != 5 {
		t.Fatalf("BytesWritten = %d, want 5", got)
	}

	boom := errors.New("injected ENOSPC")
	// Allow 3 more bytes (global offset 8), then fail.
	fsys.FailWritesAt(8, boom)
	n, err := f.Write([]byte("world!"))
	if n != 3 || !errors.Is(err, boom) {
		t.Fatalf("short write: n=%d err=%v, want 3, injected", n, err)
	}
	// Past the trip point every write fails with zero bytes.
	n, err = f.Write([]byte("x"))
	if n != 0 || !errors.Is(err, boom) {
		t.Fatalf("post-trip write: n=%d err=%v", n, err)
	}

	fsys.Heal()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("healed write: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hellowor"+"ok" {
		t.Fatalf("file contents = %q", b)
	}
}

func TestFaultySyncCountdownAndHeal(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(nil)
	f, err := fsys.OpenFile(filepath.Join(dir, "b"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	boom := errors.New("injected EIO")
	fsys.FailSyncsAfter(2, boom)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d before trip: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync past trip: %v, want injected", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync stays failed: %v", err)
	}
	if got := fsys.Syncs(); got != 4 {
		t.Fatalf("Syncs = %d, want 4", got)
	}
	fsys.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
}
