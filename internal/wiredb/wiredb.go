// Package wiredb is the JSON interchange layer for the database verbs
// of the wire protocol (internal/server's TABLE, INSERT, UPDATE,
// DELETE, SELECT, TRIG and WATCH commands): specs for schemas, one-shot
// queries, triggers and watched queries, plus the schema-aware value
// coercion that turns JSON scalars into typed column values and query
// results back into JSON.
//
// The paper's §2.2.a claim is that events are captured from database
// state — by triggers, by mining the journal, and by repeatedly
// evaluated queries. This package is what lets a foreign system reach
// that state over the wire: it declares tables, mutates rows so
// triggers fire, and registers the watched queries whose result-set
// diffs become events, all as single-line JSON payloads.
package wiredb

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"eventdb/internal/expr"
	"eventdb/internal/query"
	"eventdb/internal/storage"
	"eventdb/internal/trigger"
	"eventdb/internal/val"
)

// Classification sentinels, so the wire layer can map failures to its
// stable error codes without string matching.
var (
	// ErrSpec wraps semantically invalid specs and values: unknown
	// columns, uncompilable predicates, bad coercions.
	ErrSpec = errors.New("wiredb: invalid spec")
	// ErrNoTable wraps references to tables that do not exist.
	ErrNoTable = errors.New("wiredb: no such table")
)

// ColumnSpec declares one column of a TABLE command.
type ColumnSpec struct {
	Name string `json:"name"`
	// Kind is a val kind name: bool, int, float, string, time, bytes.
	Kind    string `json:"kind"`
	NotNull bool   `json:"notnull,omitempty"`
	// Default is the value used when an insert omits the column (a JSON
	// scalar, coerced to Kind).
	Default any `json:"default,omitempty"`
}

// TableSpec is the JSON payload of the TABLE command.
type TableSpec struct {
	Name    string       `json:"name"`
	Columns []ColumnSpec `json:"columns"`
	// Key lists the primary-key column names (optional).
	Key []string `json:"key,omitempty"`
}

// ParseTableSpec decodes and validates a TABLE payload into a schema.
func ParseTableSpec(data []byte) (*storage.Schema, error) {
	var spec TableSpec
	if err := decodeStrict(data, &spec); err != nil {
		return nil, fmt.Errorf("wiredb: table spec: %w", err)
	}
	cols := make([]storage.Column, len(spec.Columns))
	for i, cs := range spec.Columns {
		kind, err := val.ParseKind(cs.Kind)
		if err != nil {
			return nil, fmt.Errorf("wiredb: column %q: %w", cs.Name, err)
		}
		def := val.Null
		if cs.Default != nil {
			def, err = coerce(kind, cs.Default)
			if err != nil {
				return nil, fmt.Errorf("wiredb: column %q default: %w", cs.Name, err)
			}
		}
		cols[i] = storage.Column{Name: cs.Name, Kind: kind, NotNull: cs.NotNull, Default: def}
	}
	return storage.NewSchema(spec.Name, cols, spec.Key...)
}

// AggSpec is one aggregate output of a QuerySpec.
type AggSpec struct {
	Alias string `json:"alias"`
	// Kind is an aggregate name: count, sum, avg, min, max.
	Kind string `json:"kind"`
	// Col is the aggregated column; empty for count.
	Col string `json:"col,omitempty"`
}

// OrderSpec is one sort key of a QuerySpec.
type OrderSpec struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// JoinSpec is the inner equi-join clause of a QuerySpec.
type JoinSpec struct {
	Table string `json:"table"`
	Left  string `json:"left"`
	Right string `json:"right"`
}

// QuerySpec is the JSON payload of the SELECT command and the query
// half of a WATCH spec. It mirrors the query builder field for field.
type QuerySpec struct {
	Table  string      `json:"table"`
	Where  string      `json:"where,omitempty"`
	Select []string    `json:"select,omitempty"`
	Group  []string    `json:"group,omitempty"`
	Aggs   []AggSpec   `json:"aggs,omitempty"`
	Order  []OrderSpec `json:"order,omitempty"`
	// Limit bounds the result; nil means unlimited (0 means zero rows).
	Limit  *int      `json:"limit,omitempty"`
	Offset int       `json:"offset,omitempty"`
	Join   *JoinSpec `json:"join,omitempty"`
}

// ParseQuerySpec decodes a SELECT payload.
func ParseQuerySpec(data []byte) (QuerySpec, error) {
	var spec QuerySpec
	if err := decodeStrict(data, &spec); err != nil {
		return QuerySpec{}, fmt.Errorf("wiredb: query spec: %w", err)
	}
	return spec, nil
}

// Build assembles the executable query. Expression errors still surface
// at Run (the builder defers them), but structural problems — unknown
// aggregate kinds, a missing table name — fail here.
func (s QuerySpec) Build() (*query.Query, error) {
	if s.Table == "" {
		return nil, errors.New("wiredb: query spec needs a table")
	}
	q := query.New(s.Table)
	if s.Where != "" {
		q.Where(s.Where)
	}
	if len(s.Select) > 0 {
		q.Select(s.Select...)
	}
	if len(s.Group) > 0 {
		q.GroupBy(s.Group...)
	}
	for _, a := range s.Aggs {
		kind, ok := aggKindByName(a.Kind)
		if !ok {
			return nil, fmt.Errorf("wiredb: unknown aggregate kind %q", a.Kind)
		}
		alias := a.Alias
		if alias == "" {
			alias = a.Kind
		}
		q.Agg(alias, kind, a.Col)
	}
	for _, o := range s.Order {
		dir := query.Asc
		if o.Desc {
			dir = query.Desc
		}
		q.OrderBy(o.Col, dir)
	}
	if s.Limit != nil {
		q.Limit(*s.Limit)
	}
	if s.Offset > 0 {
		q.Offset(s.Offset)
	}
	if s.Join != nil {
		q.Join(s.Join.Table, s.Join.Left, s.Join.Right)
	}
	return q, nil
}

func aggKindByName(name string) (query.AggKind, bool) {
	switch name {
	case "count":
		return query.Count, true
	case "sum":
		return query.Sum, true
	case "avg":
		return query.Avg, true
	case "min":
		return query.Min, true
	case "max":
		return query.Max, true
	}
	return 0, false
}

// TriggerSpec is the JSON payload of the TRIG command.
type TriggerSpec struct {
	Table string `json:"table"`
	// Timing is "before" or "after" (the default).
	Timing string `json:"timing,omitempty"`
	// Ops filters which change kinds fire the trigger (insert, update,
	// delete); empty means all.
	Ops []string `json:"ops,omitempty"`
	// When is an optional guard predicate over old./new. row images.
	When string `json:"when,omitempty"`
	// Veto, valid only on BEFORE triggers, aborts the transaction with
	// this message whenever the trigger fires — the wire form of a
	// guard trigger. Without Veto the trigger emits the canonical
	// "db.<table>.<op>" change event into the engine's ingest path.
	Veto string `json:"veto,omitempty"`
}

// ParseTriggerSpec decodes a TRIG payload.
func ParseTriggerSpec(data []byte) (TriggerSpec, error) {
	var spec TriggerSpec
	if err := decodeStrict(data, &spec); err != nil {
		return TriggerSpec{}, fmt.Errorf("wiredb: trigger spec: %w", err)
	}
	return spec, nil
}

// Def converts the spec into a registrable trigger definition.
func (s TriggerSpec) Def(name string) (trigger.Def, error) {
	def := trigger.Def{Name: name, Table: s.Table, When: s.When}
	switch s.Timing {
	case "", "after":
		def.Timing = trigger.After
	case "before":
		def.Timing = trigger.Before
	default:
		return trigger.Def{}, fmt.Errorf("wiredb: trigger timing %q (want \"before\" or \"after\")", s.Timing)
	}
	for _, op := range s.Ops {
		kind, ok := changeKindByName(op)
		if !ok {
			return trigger.Def{}, fmt.Errorf("wiredb: unknown trigger op %q", op)
		}
		def.Ops = append(def.Ops, kind)
	}
	if s.Veto != "" {
		if def.Timing != trigger.Before {
			return trigger.Def{}, errors.New("wiredb: veto requires a before trigger")
		}
		msg := s.Veto
		def.Action = func(*trigger.Context) error { return errors.New(msg) }
	}
	return def, nil
}

func changeKindByName(name string) (storage.ChangeKind, bool) {
	switch name {
	case "insert":
		return storage.Insert, true
	case "update":
		return storage.Update, true
	case "delete":
		return storage.Delete, true
	}
	return 0, false
}

// WatchSpec is the JSON payload of the WATCH command: a query polled on
// a schedule, whose result-set diffs are ingested as
// "query.<name>.<added|removed|changed>" events.
type WatchSpec struct {
	Query QuerySpec `json:"query"`
	// Key lists result columns that uniquely identify a logical row;
	// the differ keys diffs on them.
	Key []string `json:"key"`
	// IntervalMS overrides the server's default poll interval.
	IntervalMS int `json:"interval_ms,omitempty"`
}

// ParseWatchSpec decodes and validates a WATCH payload.
func ParseWatchSpec(data []byte) (WatchSpec, error) {
	var spec WatchSpec
	if err := decodeStrict(data, &spec); err != nil {
		return WatchSpec{}, fmt.Errorf("wiredb: watch spec: %w", err)
	}
	if len(spec.Key) == 0 {
		// Without key columns every result row would collapse onto one
		// diff key and updates would shadow each other.
		return WatchSpec{}, errors.New("wiredb: watch spec needs key columns")
	}
	if spec.IntervalMS < 0 {
		return WatchSpec{}, errors.New("wiredb: watch interval must be non-negative")
	}
	return spec, nil
}

// --- values -------------------------------------------------------------

// ToValue converts a decoded JSON scalar to a value, folding integral
// floats to ints the way the event codec does. It also passes through
// already-typed Go values, so the client API accepts natural literals.
func ToValue(raw any) (val.Value, error) {
	if f, ok := raw.(float64); ok {
		if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			return val.Int(int64(f)), nil
		}
		return val.Float(f), nil
	}
	return val.FromAny(raw)
}

// coerce converts a JSON scalar toward a column kind: RFC 3339 strings
// for time columns, base64 strings for bytes columns, ints widening
// into float columns. Everything else converts kind-preserving and is
// left for schema validation to accept or reject.
func coerce(kind val.Kind, raw any) (val.Value, error) {
	if s, ok := raw.(string); ok {
		switch kind {
		case val.KindTime:
			t, err := time.Parse(time.RFC3339Nano, s)
			if err != nil {
				return val.Null, fmt.Errorf("wiredb: bad time %q: %w", s, err)
			}
			return val.Time(t), nil
		case val.KindBytes:
			b, err := base64.StdEncoding.DecodeString(s)
			if err != nil {
				return val.Null, fmt.Errorf("wiredb: bad base64 %q: %w", s, err)
			}
			return val.Bytes(b), nil
		}
	}
	v, err := ToValue(raw)
	if err != nil {
		return val.Null, err
	}
	if kind == val.KindFloat {
		if n, ok := v.AsInt(); ok {
			return val.Float(float64(n)), nil
		}
	}
	return v, nil
}

// Values converts named JSON scalars to typed column values under a
// schema (the INSERT payload and the UPDATE set clause). Unknown
// columns are an error.
func Values(schema *storage.Schema, m map[string]any) (map[string]val.Value, error) {
	out := make(map[string]val.Value, len(m))
	for name, raw := range m {
		ci := schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: table %q has no column %q", ErrSpec, schema.Name, name)
		}
		v, err := coerce(schema.Columns[ci].Kind, raw)
		if err != nil {
			return nil, fmt.Errorf("%w: column %q: %v", ErrSpec, name, err)
		}
		out[name] = v
	}
	return out, nil
}

// --- DML execution ------------------------------------------------------

// InsertRow inserts one row built from JSON scalars, returning its row
// ID. The commit path runs BEFORE hooks (which may veto) and AFTER
// hooks (which capture the change as an event).
func InsertRow(db *storage.DB, table string, values map[string]any) (storage.RowID, error) {
	tbl, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	vals, err := Values(tbl.Schema(), values)
	if err != nil {
		return 0, err
	}
	return db.Insert(table, vals)
}

// matchIDs collects the IDs of rows satisfying a where predicate (all
// rows when the predicate is empty).
func matchIDs(tbl *storage.Table, where string) ([]storage.RowID, error) {
	var pred *expr.Predicate
	if where != "" {
		p, err := expr.Compile(where)
		if err != nil {
			return nil, fmt.Errorf("%w: where: %v", ErrSpec, err)
		}
		pred = p
	}
	schema := tbl.Schema()
	var ids []storage.RowID
	var matchErr error
	tbl.Scan(func(id storage.RowID, r storage.Row) bool {
		if pred != nil {
			ok, err := pred.Match(storage.RowResolver{Schema: schema, Row: r})
			if err != nil {
				matchErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	return ids, matchErr
}

// UpdateWhere updates every row matching the predicate in one atomic
// transaction, returning how many rows changed. BEFORE triggers may
// veto the whole transaction; AFTER triggers fire per change.
func UpdateWhere(db *storage.DB, table, where string, set map[string]any) (int, error) {
	tbl, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	vals, err := Values(tbl.Schema(), set)
	if err != nil {
		return 0, err
	}
	ids, err := matchIDs(tbl, where)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	txn := db.Begin()
	for _, id := range ids {
		if err := txn.Update(table, id, vals); err != nil {
			txn.Rollback()
			return 0, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// DeleteWhere deletes every row matching the predicate in one atomic
// transaction, returning how many rows were removed.
func DeleteWhere(db *storage.DB, table, where string) (int, error) {
	tbl, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	ids, err := matchIDs(tbl, where)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	txn := db.Begin()
	for _, id := range ids {
		if err := txn.Delete(table, id); err != nil {
			txn.Rollback()
			return 0, err
		}
	}
	if _, err := txn.Commit(); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// --- results ------------------------------------------------------------

// Result is the JSON form of a one-shot SELECT reply. Values are JSON
// scalars: times as RFC 3339 strings, bytes base64.
type Result struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// MarshalResult renders a query result as a single JSON line.
func MarshalResult(res *query.Result) ([]byte, error) {
	out := Result{Columns: res.Columns, Rows: make([][]any, len(res.Rows))}
	for i, row := range res.Rows {
		jr := make([]any, len(row))
		for j, v := range row {
			a := v.Any()
			switch x := a.(type) {
			case time.Time:
				a = x.Format(time.RFC3339Nano)
			case []byte:
				a = base64.StdEncoding.EncodeToString(x)
			}
			jr[j] = a
		}
		out.Rows[i] = jr
	}
	return json.Marshal(out)
}

// ParseResult decodes a SELECT reply. Integral numbers come back as
// int64, everything else as the natural JSON scalar.
func ParseResult(data []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("wiredb: result: %w", err)
	}
	for _, row := range res.Rows {
		for j, raw := range row {
			if f, ok := raw.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
				row[j] = int64(f)
			}
		}
	}
	return &res, nil
}

func decodeStrict(data []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}
