package wiredb

import (
	"errors"
	"strings"
	"testing"
	"time"

	"eventdb/internal/storage"
	"eventdb/internal/trigger"
	"eventdb/internal/val"
)

func testDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema, err := ParseTableSpec([]byte(`{
		"name": "stock",
		"columns": [
			{"name": "sku", "kind": "string", "notnull": true},
			{"name": "qty", "kind": "int", "notnull": true},
			{"name": "price", "kind": "float", "default": 1.5},
			{"name": "seen", "kind": "time"}
		],
		"key": ["sku"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseTableSpec(t *testing.T) {
	db := testDB(t)
	tbl, ok := db.Table("stock")
	if !ok {
		t.Fatal("table missing")
	}
	s := tbl.Schema()
	if s.Columns[2].Kind != val.KindFloat {
		t.Errorf("price kind = %s", s.Columns[2].Kind)
	}
	if f, _ := s.Columns[2].Default.AsFloat(); f != 1.5 {
		t.Errorf("price default = %v", s.Columns[2].Default)
	}
	if !s.HasPrimaryKey() {
		t.Error("primary key lost")
	}
	for _, bad := range []string{
		`{"name":"x","columns":[{"name":"a","kind":"wat"}]}`,
		`{"name":"","columns":[{"name":"a","kind":"int"}]}`,
		`{"name":"x","columns":[],"unknown_field":1}`,
	} {
		if _, err := ParseTableSpec([]byte(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestValuesCoercion(t *testing.T) {
	db := testDB(t)
	tbl, _ := db.Table("stock")
	vals, err := Values(tbl.Schema(), map[string]any{
		"sku":   "w",
		"qty":   float64(7), // JSON number
		"price": float64(2), // integral JSON number into a float column
		"seen":  "2026-07-30T12:00:00Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := vals["qty"].AsInt(); n != 7 {
		t.Errorf("qty = %v", vals["qty"])
	}
	if vals["price"].Kind() != val.KindFloat {
		t.Errorf("price kind = %s", vals["price"].Kind())
	}
	ts, ok := vals["seen"].AsTime()
	if !ok || !ts.Equal(time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)) {
		t.Errorf("seen = %v", vals["seen"])
	}
	if _, err := Values(tbl.Schema(), map[string]any{"nope": 1}); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown column error = %v", err)
	}
	if _, err := Values(tbl.Schema(), map[string]any{"seen": "not a time"}); !errors.Is(err, ErrSpec) {
		t.Errorf("bad time error = %v", err)
	}
}

func TestDMLHelpers(t *testing.T) {
	db := testDB(t)
	for i, sku := range []string{"a", "b", "c"} {
		if _, err := InsertRow(db, "stock", map[string]any{"sku": sku, "qty": float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := UpdateWhere(db, "stock", "qty >= 10", map[string]any{"qty": float64(99)})
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	n, err = DeleteWhere(db, "stock", "qty = 99")
	if err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	tbl, _ := db.Table("stock")
	if tbl.Len() != 1 {
		t.Fatalf("rows left = %d", tbl.Len())
	}
	// Predicate compile failures classify as spec errors; missing
	// tables as table errors.
	if _, err := UpdateWhere(db, "stock", "qty >>> 1", map[string]any{"qty": 0}); !errors.Is(err, ErrSpec) {
		t.Errorf("bad where error = %v", err)
	}
	if _, err := DeleteWhere(db, "missing", ""); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table error = %v", err)
	}
	// A no-match where is n=0, not an error.
	if n, err := DeleteWhere(db, "stock", "qty = 12345"); err != nil || n != 0 {
		t.Errorf("no-match delete = %d, %v", n, err)
	}
}

func TestQuerySpecAndResultRoundTrip(t *testing.T) {
	db := testDB(t)
	for i, sku := range []string{"a", "b", "c"} {
		if _, err := InsertRow(db, "stock", map[string]any{"sku": sku, "qty": float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := ParseQuerySpec([]byte(`{
		"table": "stock", "where": "qty > 0",
		"select": ["sku", "qty"],
		"order": [{"col": "qty", "desc": true}],
		"limit": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	q, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsRune(string(data), '\n') {
		t.Fatal("result not single-line")
	}
	back, err := ParseResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0][0] != "c" || back.Rows[0][1] != int64(20) {
		t.Fatalf("round-tripped result = %+v", back)
	}

	// Aggregates build too.
	agg, err := ParseQuerySpec([]byte(`{"table":"stock","aggs":[{"alias":"n","kind":"count"},{"alias":"total","kind":"sum","col":"qty"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	q, err = agg.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err = q.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Get(0, "total"); !ok || v.String() != "30" {
		t.Fatalf("sum = %v", v)
	}
	if _, err := (QuerySpec{}).Build(); err == nil {
		t.Error("empty spec built")
	}
	if _, err := (QuerySpec{Table: "t", Aggs: []AggSpec{{Kind: "wat"}}}).Build(); err == nil {
		t.Error("unknown aggregate built")
	}
}

func TestTriggerSpec(t *testing.T) {
	spec, err := ParseTriggerSpec([]byte(`{"table":"t","timing":"before","ops":["update"],"when":"new.a < old.a","veto":"shrinking"}`))
	if err != nil {
		t.Fatal(err)
	}
	def, err := spec.Def("guard")
	if err != nil {
		t.Fatal(err)
	}
	if def.Timing != trigger.Before || len(def.Ops) != 1 || def.Ops[0] != storage.Update {
		t.Fatalf("def = %+v", def)
	}
	if def.Action == nil {
		t.Fatal("veto action missing")
	}
	if err := def.Action(nil); err == nil || err.Error() != "shrinking" {
		t.Fatalf("veto action error = %v", err)
	}
	// Veto demands a BEFORE trigger; unknown timings and ops fail.
	for _, bad := range []TriggerSpec{
		{Table: "t", Veto: "nope"},
		{Table: "t", Timing: "sometimes"},
		{Table: "t", Ops: []string{"upsert"}},
	} {
		if _, err := bad.Def("x"); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestWatchSpecValidation(t *testing.T) {
	if _, err := ParseWatchSpec([]byte(`{"query":{"table":"t"},"key":["a"],"interval_ms":50}`)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`{"query":{"table":"t"}}`,
		`{"query":{"table":"t"},"key":[],"interval_ms":5}`,
		`{"query":{"table":"t"},"key":["a"],"interval_ms":-1}`,
	} {
		if _, err := ParseWatchSpec([]byte(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}
