// Package metrics provides the lightweight counters and latency
// histograms used by the engine and the experiment harness (performance
// and scalability are "operational characteristics" the paper calls out
// at every stage).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level (queue depth, shard backlog) that can
// move in both directions. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyHistogram records durations into exponential buckets
// (1µs·2^i), supporting approximate percentiles without storing
// samples. Safe for concurrent use.
type LatencyHistogram struct {
	mu      sync.Mutex
	buckets [40]uint64 // 1µs .. ~1.1e6s
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us))) + 1
	if b >= 40 {
		b = 39
	}
	return b
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average duration.
func (h *LatencyHistogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *LatencyHistogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *LatencyHistogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (bucket
// resolution: a factor of 2).
func (h *LatencyHistogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *LatencyHistogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Registry is a named collection of counters and histograms, used by
// the engine to expose operational statistics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LatencyHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LatencyHistogram),
	}
}

// Counter returns (creating if needed) a named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) a named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) a named latency histogram.
func (r *Registry) Histogram(name string) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &LatencyHistogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders all metrics as sorted "name value" lines.
func (r *Registry) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name, c := range r.counters {
		out = append(out, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		out = append(out, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range r.hists {
		out = append(out, fmt.Sprintf("%s %s", name, h.String()))
	}
	sort.Strings(out)
	return out
}
