package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d", c.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8005 {
		t.Errorf("concurrent value = %d", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h LatencyHistogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	durations := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 10*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// p50 upper bound: within 2x of the true median (bucket resolution).
	p50 := h.Percentile(50)
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	p100 := h.Percentile(100)
	if p100 < 10*time.Millisecond {
		t.Errorf("p100 = %v", p100)
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h LatencyHistogram
	h.Observe(0)
	h.Observe(500 * time.Hour)
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Percentile(1) > time.Microsecond {
		t.Errorf("tiny percentile = %v", h.Percentile(1))
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("events.in").Add(10)
	r.Counter("events.in").Inc() // same counter
	r.Histogram("lat").Observe(time.Millisecond)
	if r.Counter("events.in").Value() != 11 {
		t.Errorf("counter = %d", r.Counter("events.in").Value())
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if !strings.HasPrefix(snap[0], "events.in 11") {
		t.Errorf("snapshot[0] = %q", snap[0])
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(3)
	g.Add(-5)
	if g.Value() != 5 {
		t.Errorf("value = %d", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Error("gauge not interned by name")
	}
	found := false
	for _, line := range r.Snapshot() {
		if line == "depth 5" {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot = %v", r.Snapshot())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("value = %d after balanced adds", g.Value())
	}
}
