package audit

import (
	"testing"

	"eventdb/internal/event"
	"eventdb/internal/storage"
)

func db(t *testing.T, dir string) *storage.DB {
	t.Helper()
	d, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrailRecordAndQuery(t *testing.T) {
	d := db(t, "")
	defer d.Close()
	tr, err := NewTrail(d, "audit")
	if err != nil {
		t.Fatal(err)
	}
	tr.Record("alice", "enqueue", "q_in", "msg 1")
	tr.Record("bob", "dequeue", "q_in", "msg 1")
	tr.Record("alice", "subscribe", "topic/x", "")

	all, err := tr.Entries("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("entries = %d", len(all))
	}
	// Ordered by sequence.
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Errorf("entries out of order: %v", all)
		}
	}
	byAlice, _ := tr.Entries("alice", "")
	if len(byAlice) != 2 {
		t.Errorf("alice entries = %d", len(byAlice))
	}
	byQueue, _ := tr.Entries("", "q_in")
	if len(byQueue) != 2 {
		t.Errorf("q_in entries = %d", len(byQueue))
	}
	both, _ := tr.Entries("alice", "q_in")
	if len(both) != 1 || both[0].Action != "enqueue" {
		t.Errorf("combined filter = %v", both)
	}
}

func TestTrailSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := db(t, dir)
	tr, _ := NewTrail(d, "audit")
	tr.Record("alice", "x", "r", "")
	tr.Record("alice", "y", "r", "")
	d.Close()

	d2 := db(t, dir)
	defer d2.Close()
	tr2, err := NewTrail(d2, "audit")
	if err != nil {
		t.Fatal(err)
	}
	// Sequence resumes without collision.
	if err := tr2.Record("bob", "z", "r", ""); err != nil {
		t.Fatal(err)
	}
	all, _ := tr2.Entries("", "")
	if len(all) != 3 || all[2].Principal != "bob" {
		t.Errorf("entries after restart = %v", all)
	}
}

func TestLineage(t *testing.T) {
	d := db(t, "")
	defer d.Close()
	ln, err := NewLineage(d, "lineage")
	if err != nil {
		t.Fatal(err)
	}
	// raw → captured → matched → notified
	raw, captured, matched, notified := event.NextID(), event.NextID(), event.NextID(), event.NextID()
	ln.Link(raw, captured, "capture")
	ln.Link(captured, matched, "rules")
	ln.Link(matched, notified, "dispatch")

	anc, err := ln.Ancestors(notified)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Fatalf("ancestors = %v", anc)
	}
	if anc[0] != matched || anc[1] != captured || anc[2] != raw {
		t.Errorf("ancestor order = %v", anc)
	}
	// No ancestors for a root.
	anc, _ = ln.Ancestors(raw)
	if len(anc) != 0 {
		t.Errorf("root ancestors = %v", anc)
	}
	// Diamond: two parents.
	merged := event.NextID()
	ln.Link(matched, merged, "join")
	ln.Link(captured, merged, "join")
	anc, _ = ln.Ancestors(merged)
	if len(anc) != 3 {
		t.Errorf("diamond ancestors = %v", anc)
	}
}
