// Package audit implements the auditing/tracking operational
// characteristic the paper requires at every stage (§2.2.b/c/d
// "security, auditing, tracking"): an append-only audit trail stored as
// a database table, and message lineage linking derived events to their
// causes.
package audit

import (
	"fmt"
	"sync/atomic"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// Entry is one audit record.
type Entry struct {
	Seq       int64
	Time      time.Time
	Principal string
	Action    string
	Resource  string
	Detail    string
}

// Trail is an append-only audit log backed by a storage table (and so
// WAL-recoverable and queryable like any other data).
type Trail struct {
	db    *storage.DB
	table string
	seq   atomic.Int64
}

// TrailSchema returns the audit table schema.
func TrailSchema(table string) (*storage.Schema, error) {
	return storage.NewSchema(table, []storage.Column{
		{Name: "seq", Kind: val.KindInt, NotNull: true},
		{Name: "ts", Kind: val.KindTime, NotNull: true},
		{Name: "principal", Kind: val.KindString, NotNull: true},
		{Name: "action", Kind: val.KindString, NotNull: true},
		{Name: "resource", Kind: val.KindString, NotNull: true},
		{Name: "detail", Kind: val.KindString, Default: val.String("")},
	}, "seq")
}

// NewTrail creates (or reattaches to) an audit table.
func NewTrail(db *storage.DB, table string) (*Trail, error) {
	t := &Trail{db: db, table: table}
	tbl, ok := db.Table(table)
	if !ok {
		schema, err := TrailSchema(table)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(schema); err != nil {
			return nil, err
		}
		return t, nil
	}
	// Resume the sequence after recovery.
	var maxSeq int64
	tbl.Scan(func(_ storage.RowID, r storage.Row) bool {
		if s, ok := r[0].AsInt(); ok && s > maxSeq {
			maxSeq = s
		}
		return true
	})
	t.seq.Store(maxSeq)
	return t, nil
}

// Record appends one audit entry.
func (t *Trail) Record(principal, action, resource, detail string) error {
	seq := t.seq.Add(1)
	_, err := t.db.Insert(t.table, map[string]val.Value{
		"seq":       val.Int(seq),
		"ts":        val.Time(time.Now().UTC()),
		"principal": val.String(principal),
		"action":    val.String(action),
		"resource":  val.String(resource),
		"detail":    val.String(detail),
	})
	return err
}

// Entries returns audit records filtered by principal and/or resource
// (empty = any), ordered by sequence.
func (t *Trail) Entries(principal, resource string) ([]Entry, error) {
	tbl, ok := t.db.Table(t.table)
	if !ok {
		return nil, fmt.Errorf("audit: no table %q", t.table)
	}
	var out []Entry
	tbl.Scan(func(_ storage.RowID, r storage.Row) bool {
		p, _ := r[2].AsString()
		res, _ := r[4].AsString()
		if principal != "" && p != principal {
			return true
		}
		if resource != "" && res != resource {
			return true
		}
		seq, _ := r[0].AsInt()
		ts, _ := r[1].AsTime()
		act, _ := r[3].AsString()
		det, _ := r[5].AsString()
		out = append(out, Entry{Seq: seq, Time: ts, Principal: p, Action: act, Resource: res, Detail: det})
		return true
	})
	// Scan order is map order; sort by seq.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// Lineage tracks which events derived from which — message tracking
// across pipeline stages.
type Lineage struct {
	db    *storage.DB
	table string
}

// LineageSchema returns the lineage table schema.
func LineageSchema(table string) (*storage.Schema, error) {
	return storage.NewSchema(table, []storage.Column{
		{Name: "parent", Kind: val.KindInt, NotNull: true},
		{Name: "child", Kind: val.KindInt, NotNull: true},
		{Name: "stage", Kind: val.KindString, NotNull: true},
	})
}

// NewLineage creates (or reattaches to) a lineage table.
func NewLineage(db *storage.DB, table string) (*Lineage, error) {
	if _, ok := db.Table(table); !ok {
		schema, err := LineageSchema(table)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(schema); err != nil {
			return nil, err
		}
	}
	return &Lineage{db: db, table: table}, nil
}

// Link records that child derived from parent at the named stage.
func (l *Lineage) Link(parent, child event.ID, stage string) error {
	_, err := l.db.Insert(l.table, map[string]val.Value{
		"parent": val.Int(int64(parent)),
		"child":  val.Int(int64(child)),
		"stage":  val.String(stage),
	})
	return err
}

// Ancestors returns the transitive parents of an event, nearest first.
func (l *Lineage) Ancestors(id event.ID) ([]event.ID, error) {
	tbl, ok := l.db.Table(l.table)
	if !ok {
		return nil, fmt.Errorf("audit: no table %q", l.table)
	}
	parentOf := map[int64][]int64{}
	tbl.Scan(func(_ storage.RowID, r storage.Row) bool {
		p, _ := r[0].AsInt()
		c, _ := r[1].AsInt()
		parentOf[c] = append(parentOf[c], p)
		return true
	})
	var out []event.ID
	seen := map[int64]bool{}
	frontier := []int64{int64(id)}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, p := range parentOf[next] {
			if seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, event.ID(p))
			frontier = append(frontier, p)
		}
	}
	return out, nil
}
