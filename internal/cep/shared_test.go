package cep

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/raceflag"
)

func feedShared(s *Shared, evs ...*event.Event) []*Match {
	var out []*Match
	for _, ev := range evs {
		for _, m := range s.Feed(ev) {
			cp := *m
			out = append(out, &cp)
		}
	}
	return out
}

func TestSharedSimpleSequence(t *testing.T) {
	s := NewShared()
	p := NewPattern("ab").Next("a", "A", "").Next("b", "B", "").MustBuild()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	got := feedShared(s, mk("A", 0, nil), mk("X", 1, nil), mk("B", 2, nil))
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	m := got[0]
	if m.Pattern != "ab" || m.Bindings["a"].Type != "A" || m.Bindings["b"].Type != "B" {
		t.Errorf("match = %+v", m)
	}
	if !m.Start.Equal(t0) || !m.End.Equal(t0.Add(2*time.Second)) {
		t.Errorf("start/end = %v/%v", m.Start, m.End)
	}
}

// TestSharedPrefixSharing pins the whole point of the shared automaton:
// many patterns with a common prefix cost one instance, not one each.
func TestSharedPrefixSharing(t *testing.T) {
	s := NewShared()
	const n = 500
	for i := 0; i < n; i++ {
		p := NewPattern(fmt.Sprintf("p%d", i)).
			Next("a", "A", "").
			Next("b", "B", "").
			Next("c", "C", fmt.Sprintf("k = %d", i)).
			MustBuild()
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Feed(mk("A", 0, nil))
	if got := s.Stats().Instances; got != 1 {
		t.Fatalf("instances after shared prefix = %d, want 1", got)
	}
	s.Feed(mk("B", 1, nil))
	// The a→b advance consumes the prefix instance (SkipTillNext), so
	// 500 two-step partial runs are still exactly one instance.
	if got := s.Stats().Instances; got != 1 {
		t.Fatalf("instances after two shared steps = %d, want 1", got)
	}
	// Only the matching suffix fires, via the equality index.
	ms := s.Feed(mk("C", 2, map[string]any{"k": 7}))
	if len(ms) != 1 || ms[0].Pattern != "p7" {
		t.Fatalf("matches = %v, want exactly p7", ms)
	}
}

func TestSharedDuplicateAndRemove(t *testing.T) {
	s := NewShared()
	p := NewPattern("x").Next("a", "A", "").MustBuild()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(p); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := s.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown pattern succeeded")
	}
	if err := s.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if got := s.Feed(mk("A", 0, nil)); len(got) != 0 {
		t.Fatalf("matches after remove = %v", got)
	}
	if st := s.Stats(); st.Patterns != 0 || st.Instances != 0 {
		t.Fatalf("stats after remove = %+v", st)
	}
}

// TestSharedRemoveKeepsSharedPrefix: removing one pattern must not
// disturb partial matches of a pattern sharing its prefix.
func TestSharedRemoveKeepsSharedPrefix(t *testing.T) {
	s := NewShared()
	p1 := NewPattern("p1").Next("a", "A", "").Next("b", "B", "").MustBuild()
	p2 := NewPattern("p2").Next("a", "A", "").Next("c", "C", "").MustBuild()
	if err := s.Add(p1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(p2); err != nil {
		t.Fatal(err)
	}
	s.Feed(mk("A", 0, nil))
	if err := s.Remove("p1"); err != nil {
		t.Fatal(err)
	}
	got := feedShared(s, mk("B", 1, nil), mk("C", 2, nil))
	if len(got) != 1 || got[0].Pattern != "p2" {
		t.Fatalf("matches = %v, want p2 only", got)
	}
}

// TestSharedLateRegistration: a pattern registered mid-stream only sees
// runs started after registration, exactly like attaching a fresh
// Matcher mid-stream.
func TestSharedLateRegistration(t *testing.T) {
	s := NewShared()
	p1 := NewPattern("p1").Next("a", "A", "").Next("b", "B", "").MustBuild()
	if err := s.Add(p1); err != nil {
		t.Fatal(err)
	}
	s.Feed(mk("A", 0, nil)) // run starts while only p1 exists
	p2 := NewPattern("p2").Next("a", "A", "").Next("b", "B", "").MustBuild()
	if err := s.Add(p2); err != nil {
		t.Fatal(err)
	}
	got := feedShared(s, mk("B", 1, nil))
	if len(got) != 1 || got[0].Pattern != "p1" {
		t.Fatalf("matches = %v, want p1 only (p2 registered after the run started)", got)
	}
	// A fresh A event is visible to both.
	got = feedShared(s, mk("A", 2, nil), mk("B", 3, nil))
	names := map[string]bool{}
	for _, m := range got {
		names[m.Pattern] = true
	}
	if len(got) != 2 || !names["p1"] || !names["p2"] {
		t.Fatalf("matches = %v, want one each of p1, p2", got)
	}
}

func TestSharedAdvanceHorizonGC(t *testing.T) {
	s := NewShared()
	p := NewPattern("ab").Next("a", "A", "").Next("b", "B", "").Within(10 * time.Second).MustBuild()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	unbounded := NewPattern("cd").Next("c", "C", "").Next("d", "D", "").MustBuild()
	if err := s.Add(unbounded); err != nil {
		t.Fatal(err)
	}
	s.Feed(mk("A", 0, nil))
	s.Feed(mk("C", 1, nil))
	// Inside the window nothing is pruned.
	if n := s.Advance(t0.Add(5 * time.Second)); n != 0 {
		t.Fatalf("pruned inside window = %d, want 0", n)
	}
	// Exactly at the boundary the run survives (<= semantics, matching
	// Matcher's expiry), one nanosecond past it dies.
	if n := s.Advance(t0.Add(10 * time.Second)); n != 0 {
		t.Fatalf("pruned at boundary = %d, want 0", n)
	}
	if n := s.Advance(t0.Add(10*time.Second + time.Nanosecond)); n != 1 {
		t.Fatalf("pruned past boundary = %d, want 1", n)
	}
	// The unbounded pattern's instance is never horizon-pruned.
	if n := s.Advance(t0.Add(1000 * time.Hour)); n != 0 {
		t.Fatalf("pruned unbounded = %d, want 0", n)
	}
	if st := s.Stats(); st.Pruned != 1 || st.Instances != 1 {
		t.Fatalf("stats = %+v, want Pruned 1, Instances 1", st)
	}
	// The pruned run is really gone: its completion no longer fires.
	if got := s.Feed(mk("B", 3600, nil)); len(got) != 0 {
		t.Fatalf("pruned run completed anyway: %v", got)
	}
	if got := s.Feed(mk("D", 3601, nil)); len(got) != 1 {
		t.Fatalf("unbounded run lost: %v", got)
	}
}

func TestMatcherAdvance(t *testing.T) {
	p := NewPattern("ab").Next("a", "A", "").Next("b", "B", "").Within(10 * time.Second).MustBuild()
	m := NewMatcher(p)
	m.Feed(mk("A", 0, nil))
	if n := m.Advance(t0.Add(10 * time.Second)); n != 0 {
		t.Fatalf("pruned at boundary = %d, want 0", n)
	}
	if n := m.Advance(t0.Add(11 * time.Second)); n != 1 {
		t.Fatalf("pruned past boundary = %d, want 1", n)
	}
	if m.ActiveRuns() != 0 {
		t.Fatalf("runs = %d, want 0", m.ActiveRuns())
	}
	// Unbounded matcher: Advance is a no-op.
	mu := NewMatcher(NewPattern("x").Next("a", "A", "").Next("b", "B", "").MustBuild())
	mu.Feed(mk("A", 0, nil))
	if n := mu.Advance(t0.Add(1000 * time.Hour)); n != 0 {
		t.Fatalf("unbounded Advance pruned %d", n)
	}
}

func TestSharedMaxInstances(t *testing.T) {
	s := NewShared()
	s.MaxInstances = 4
	p := NewPattern("ab").Next("a", "A", "").Next("b", "B", "").MustBuild()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Feed(mk("A", i, nil))
	}
	st := s.Stats()
	if st.Instances != 4 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want Instances 4, Dropped 6", st)
	}
}

// matchKey canonicalizes a match for set comparison: pattern, window,
// and the bound event IDs by alias.
func matchKey(m *Match) string {
	aliases := make([]string, 0, len(m.Bindings))
	for a := range m.Bindings {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d", m.Pattern, m.Start.UnixNano(), m.End.UnixNano())
	for _, a := range aliases {
		fmt.Fprintf(&b, "|%s=%d", a, m.Bindings[a].ID)
	}
	return b.String()
}

// randomPattern draws steps from a small vocabulary so independent
// patterns share prefixes often, exercising both trie sharing and the
// type/equality indexes.
func randomPattern(rng *rand.Rand, name string) *Pattern {
	types := []string{"A", "B", "C", "D", "E"}
	guards := []string{"", "", "x = 1", "x > 2", "y = 0", "x = a.x", "y < a.y"}
	b := NewPattern(name)
	nPos := 1 + rng.Intn(4)
	aliases := []string{"a", "b", "c", "d"}
	for i := 0; i < nPos; i++ {
		// A negated step between positives, sometimes.
		if i > 0 && rng.Intn(4) == 0 {
			b.Unless(fmt.Sprintf("n%d", i), types[rng.Intn(len(types))], guards[rng.Intn(len(guards))])
		}
		typ := types[rng.Intn(len(types))]
		if rng.Intn(10) == 0 {
			typ = "" // wildcard step
		}
		b.Next(aliases[i], typ, guards[rng.Intn(len(guards))])
	}
	switch rng.Intn(3) {
	case 1:
		b.Strategy(SkipTillAny)
	case 2:
		b.Strategy(Strict)
	}
	if rng.Intn(2) == 0 {
		b.Within(time.Duration(1+rng.Intn(20)) * time.Second)
	}
	return b.MustBuild()
}

func randomEvents(rng *rand.Rand, n int) []*event.Event {
	types := []string{"A", "B", "C", "D", "E", "X"}
	evs := make([]*event.Event, 0, n)
	sec := 0
	for i := 0; i < n; i++ {
		sec += rng.Intn(3) // nondecreasing, frequently equal times
		evs = append(evs, mk(types[rng.Intn(len(types))], sec, map[string]any{
			"x": rng.Intn(5),
			"y": rng.Intn(5),
		}))
	}
	return evs
}

// TestSharedDifferential is the semantic pin: random pattern sets and
// event streams must produce exactly the same match set through the
// shared automaton as through one independent Matcher per pattern —
// including a mid-stream registration and removal.
func TestSharedDifferential(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		nPat := 1 + rng.Intn(10)
		shared := NewShared()
		matchers := map[string]*Matcher{}
		addPattern := func(name string) {
			p := randomPattern(rng, name)
			if err := shared.Add(p); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			m := NewMatcher(p)
			m.MaxRuns = 1 << 20 // differential compares uncapped behavior
			matchers[name] = m
		}
		for i := 0; i < nPat; i++ {
			addPattern(fmt.Sprintf("p%d", i))
		}
		evs := randomEvents(rng, 250)
		churnAt := rng.Intn(len(evs))
		var want, got []string
		for i, ev := range evs {
			if i == churnAt {
				victim := fmt.Sprintf("p%d", rng.Intn(nPat))
				if err := shared.Remove(victim); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				delete(matchers, victim)
				addPattern("late")
			}
			for _, m := range matchers {
				for _, mt := range m.Feed(ev) {
					want = append(want, matchKey(mt))
				}
			}
			for _, mt := range shared.Feed(ev) {
				got = append(got, matchKey(mt))
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d: shared %d matches, independent %d\nshared: %v\nindependent: %v",
				trial, len(got), len(want), got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: match %d differs\nshared:      %s\nindependent: %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSharedDifferentialWithAdvance interleaves horizon GC with
// feeding: Advance at the stream's current time must not change the
// match set, because Feed performs the same sweep.
func TestSharedDifferentialWithAdvance(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*104729 + 1))
		p := randomPattern(rng, "p")
		shared := NewShared()
		if err := shared.Add(p); err != nil {
			t.Fatal(err)
		}
		m := NewMatcher(p)
		m.MaxRuns = 1 << 20
		var want, got []string
		for _, ev := range randomEvents(rng, 200) {
			if rng.Intn(3) == 0 {
				shared.Advance(ev.Time)
				m.Advance(ev.Time)
			}
			for _, mt := range m.Feed(ev) {
				want = append(want, matchKey(mt))
			}
			for _, mt := range shared.Feed(ev) {
				got = append(got, matchKey(mt))
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("trial %d:\nshared: %v\nindependent: %v", trial, got, want)
		}
	}
}

// TestAllocsSharedFeedNoMatch pins the zero-alloc hot path: events that
// advance nothing allocate nothing, however many patterns are
// registered.
func TestAllocsSharedFeedNoMatch(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := NewShared()
	for i := 0; i < 1000; i++ {
		p := NewPattern(fmt.Sprintf("p%d", i)).
			Next("a", fmt.Sprintf("T%d", i%50), fmt.Sprintf("k = %d", i)).
			Next("b", "done", "k = a.k").
			Within(time.Minute).
			MustBuild()
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	evs := make([]*event.Event, 700)
	for i := range evs {
		// Registered type, never-matching key: the equality index must
		// reject it without touching any edge.
		evs[i] = mk("T3", i, map[string]any{"k": -1})
	}
	i := 0
	feed := func() {
		s.Feed(evs[i%len(evs)])
		i++
	}
	for w := 0; w < 3; w++ {
		feed()
	}
	if n := testing.AllocsPerRun(500, feed); n != 0 {
		t.Fatalf("allocs per no-match feed = %v, want 0", n)
	}
}

// TestAllocsSharedFeedSteadyState pins pooling on the advancing path:
// instances created, expired by the horizon, and reused from the pool
// allocate nothing at steady state.
func TestAllocsSharedFeedSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := NewShared()
	p := NewPattern("ab").Next("a", "A", "x > 0").Next("b", "B", "").Within(time.Second).MustBuild()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	evs := make([]*event.Event, 700)
	for i := range evs {
		// Each A starts an instance; 2s later the next A's feed prunes
		// it via the timer heap and the record returns to the pool.
		evs[i] = mk("A", 2*i, map[string]any{"x": 1})
	}
	i := 0
	feed := func() {
		s.Feed(evs[i%len(evs)])
		i++
	}
	for w := 0; w < 10; w++ {
		feed()
	}
	if n := testing.AllocsPerRun(500, feed); n != 0 {
		t.Fatalf("allocs per steady-state feed = %v, want 0", n)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	p := NewPattern("fraud").
		Next("a", "login", "").
		Unless("n", "logout", "user = a.user").
		Next("b", "wire", "user = a.user AND amount > 10000").
		Within(30 * time.Second).
		Strategy(SkipTillAny).
		MustBuild()
	data, err := MarshalSpec(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseSpec("fraud", data)
	if err != nil {
		t.Fatalf("round trip: %v\nspec: %s", err, data)
	}
	if p2.Name != "fraud" || len(p2.Steps) != 3 || p2.Within != 30*time.Second || p2.Strategy != SkipTillAny {
		t.Fatalf("round trip lost fields: %+v", p2)
	}
	if !p2.Steps[1].Negated || p2.Steps[2].Guard != "user = a.user AND amount > 10000" {
		t.Fatalf("round trip lost steps: %+v", p2.Steps)
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"empty", `{}`},
		{"no steps", `{"steps":[]}`},
		{"unknown field", `{"steps":[{"alias":"a"}],"bogus":1}`},
		{"missing alias", `{"steps":[{"type":"A"}]}`},
		{"bad guard", `{"steps":[{"alias":"a","guard":"((("}]}`},
		{"bad within", `{"steps":[{"alias":"a"}],"within":"soon"}`},
		{"negative within", `{"steps":[{"alias":"a"}],"within":"-5s"}`},
		{"bad strategy", `{"steps":[{"alias":"a"}],"strategy":"eager"}`},
		{"starts negated", `{"steps":[{"alias":"a","negated":true},{"alias":"b"}]}`},
		{"ends negated", `{"steps":[{"alias":"a"},{"alias":"b","negated":true}]}`},
		{"dup alias", `{"steps":[{"alias":"a"},{"alias":"a"}]}`},
		{"not json", `{"steps":`},
	}
	for _, tc := range cases {
		if _, err := ParseSpec("x", []byte(tc.spec)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", tc.name, tc.spec)
		}
	}
}
