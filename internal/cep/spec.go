// JSON spec interchange for patterns, so foreign systems can register
// temporal patterns over the wire (the server's PATTERN command)
// without linking the Go Builder API. The spec mirrors Step field for
// field; the strategy is named by string so the format stays stable if
// the internal enum grows.
package cep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Spec is the JSON form of a pattern.
type Spec struct {
	Steps []StepSpec `json:"steps"`
	// Within bounds first-to-last event time, Go duration syntax
	// ("30s", "5m"); empty means unbounded.
	Within string `json:"within,omitempty"`
	// Strategy is "skip-till-next" (default), "skip-till-any", or
	// "strict".
	Strategy string `json:"strategy,omitempty"`
}

// StepSpec is one pattern step.
type StepSpec struct {
	Alias   string `json:"alias"`
	Type    string `json:"type,omitempty"`  // "" matches any event type
	Guard   string `json:"guard,omitempty"` // expr syntax; "a.price" binds earlier steps
	Negated bool   `json:"negated,omitempty"`
}

// ParseSpec decodes a JSON pattern spec and compiles it. The name is
// supplied by the caller (on the wire it is the PATTERN argument), not
// the spec, so one spec can be registered under many names.
//
// Example:
//
//	{"steps":[{"alias":"a","type":"login"},
//	          {"alias":"b","type":"wire","guard":"user = a.user AND amount > 10000"}],
//	 "within":"30s"}
func ParseSpec(name string, data []byte) (*Pattern, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("cep: spec: %w", err)
	}
	return sp.Compile(name)
}

// Compile validates the spec and builds the pattern.
func (sp *Spec) Compile(name string) (*Pattern, error) {
	if len(sp.Steps) == 0 {
		return nil, fmt.Errorf("cep: spec: needs at least one step")
	}
	b := NewPattern(name)
	for _, st := range sp.Steps {
		if st.Negated {
			b.Unless(st.Alias, st.Type, st.Guard)
		} else {
			b.Next(st.Alias, st.Type, st.Guard)
		}
	}
	if sp.Within != "" {
		d, err := time.ParseDuration(sp.Within)
		if err != nil {
			return nil, fmt.Errorf("cep: spec: within: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("cep: spec: within must be positive, got %q", sp.Within)
		}
		b.Within(d)
	}
	switch sp.Strategy {
	case "", "skip-till-next":
		// default
	case "skip-till-any":
		b.Strategy(SkipTillAny)
	case "strict":
		b.Strategy(Strict)
	default:
		return nil, fmt.Errorf("cep: spec: unknown strategy %q (want skip-till-next, skip-till-any, or strict)", sp.Strategy)
	}
	return b.Build()
}

// MarshalSpec renders a pattern as the JSON spec ParseSpec accepts.
// The name is not part of the spec (see ParseSpec).
func MarshalSpec(p *Pattern) ([]byte, error) {
	sp := Spec{}
	for _, st := range p.Steps {
		sp.Steps = append(sp.Steps, StepSpec{Alias: st.Alias, Type: st.EventType, Guard: st.Guard, Negated: st.Negated})
	}
	if p.Within > 0 {
		sp.Within = p.Within.String()
	}
	if p.Strategy != SkipTillNext {
		sp.Strategy = p.Strategy.String()
	}
	return json.Marshal(sp)
}
