package cep

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/val"
)

var t0 = time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)

// mk creates an event at t0+offset seconds.
func mk(typ string, offsetSec int, attrs map[string]any) *event.Event {
	ev := event.New(typ, attrs)
	ev.Time = t0.Add(time.Duration(offsetSec) * time.Second)
	return ev
}

func feedAll(m *Matcher, evs ...*event.Event) []*Match {
	var out []*Match
	for _, ev := range evs {
		out = append(out, m.Feed(ev)...)
	}
	return out
}

func TestSimpleSequence(t *testing.T) {
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("A", 0, nil),
		mk("X", 1, nil),
		mk("B", 2, nil),
	)
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	match := got[0]
	if match.Bindings["a"].Type != "A" || match.Bindings["b"].Type != "B" {
		t.Errorf("bindings = %v", match.Bindings)
	}
	if !match.Start.Equal(t0) || !match.End.Equal(t0.Add(2*time.Second)) {
		t.Errorf("start/end = %v/%v", match.Start, match.End)
	}
}

func TestGuardsAcrossSteps(t *testing.T) {
	// Price rises twice consecutively (by symbol guard).
	p := NewPattern("rise").
		Next("a", "trade", "sym = 'ACME'").
		Next("b", "trade", "sym = 'ACME' AND price > a.price").
		Next("c", "trade", "sym = 'ACME' AND price > b.price").
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("trade", 0, map[string]any{"sym": "ACME", "price": 10}),
		mk("trade", 1, map[string]any{"sym": "OTHER", "price": 99}),
		mk("trade", 2, map[string]any{"sym": "ACME", "price": 11}),
		mk("trade", 3, map[string]any{"sym": "ACME", "price": 9}), // not a rise
		mk("trade", 4, map[string]any{"sym": "ACME", "price": 12}),
	)
	// skip-till-next from (10,11): 9 ignored? No — skip-till-next only
	// skips when the step doesn't match; 9 doesn't match (not > 11), so
	// run survives; 12 completes (10,11,12).
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	prices := []int64{}
	for _, alias := range []string{"a", "b", "c"} {
		v, _ := got[0].Bindings[alias].Get("price")
		n, _ := v.AsInt()
		prices = append(prices, n)
	}
	if prices[0] != 10 || prices[1] != 11 || prices[2] != 12 {
		t.Errorf("prices = %v", prices)
	}
}

func TestWithinWindow(t *testing.T) {
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		Within(5 * time.Second).
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("A", 0, nil),
		mk("B", 10, nil), // too late for first A
		mk("A", 11, nil),
		mk("B", 14, nil), // within 5s of second A
	)
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	if !got[0].Start.Equal(t0.Add(11 * time.Second)) {
		t.Errorf("matched the expired run: start=%v", got[0].Start)
	}
}

func TestStrictContiguity(t *testing.T) {
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		Strategy(Strict).
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("A", 0, nil),
		mk("X", 1, nil), // breaks contiguity
		mk("B", 2, nil),
		mk("A", 3, nil),
		mk("B", 4, nil), // contiguous: matches
	)
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	if !got[0].Start.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("wrong run matched: %v", got[0].Start)
	}
}

func TestSkipTillAnyForks(t *testing.T) {
	// a then b: two A's and two B's → 4 combinations... but only pairs
	// where A precedes B: a1(b1,b2), a2(b1? no, a2 after b1) — order:
	// A1 A2 B1 B2 → matches: (A1,B1) (A2,B1) (A1,B2) (A2,B2) = 4.
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		Strategy(SkipTillAny).
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("A", 0, map[string]any{"n": 1}),
		mk("A", 1, map[string]any{"n": 2}),
		mk("B", 2, map[string]any{"n": 3}),
		mk("B", 3, map[string]any{"n": 4}),
	)
	if len(got) != 4 {
		t.Fatalf("matches = %d, want 4", len(got))
	}
	// SkipTillNext yields only sequential non-overlapping starts:
	// A1→B1 completes; A2→B1 also? each run independent: A1 and A2 both
	// waiting for B; B1 completes both (single path each) = 2 matches.
	m2 := NewMatcher(NewPattern("ab").
		Next("a", "A", "").Next("b", "B", "").
		Strategy(SkipTillNext).MustBuild())
	got2 := feedAll(m2,
		mk("A", 0, map[string]any{"n": 1}),
		mk("A", 1, map[string]any{"n": 2}),
		mk("B", 2, map[string]any{"n": 3}),
		mk("B", 3, map[string]any{"n": 4}),
	)
	if len(got2) != 2 {
		t.Fatalf("skip-till-next matches = %d, want 2", len(got2))
	}
}

func TestNegation(t *testing.T) {
	// order → shipped with no cancel in between.
	p := NewPattern("fulfilled").
		Next("o", "order", "").
		Unless("c", "cancel", "c.oid = o.oid").
		Next("s", "shipped", "s.oid = o.oid").
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("order", 0, map[string]any{"oid": 1}),
		mk("cancel", 1, map[string]any{"oid": 1}),
		mk("shipped", 2, map[string]any{"oid": 1}), // cancelled: no match
		mk("order", 3, map[string]any{"oid": 2}),
		mk("cancel", 4, map[string]any{"oid": 99}), // other order's cancel
		mk("shipped", 5, map[string]any{"oid": 2}), // match
	)
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	v, _ := got[0].Bindings["o"].Get("oid")
	if !val.Equal(v, val.Int(2)) {
		t.Errorf("matched order %v", v)
	}
}

func TestMatchEventRendering(t *testing.T) {
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("A", 0, map[string]any{"x": 1}),
		mk("B", 1, map[string]any{"y": 2}),
	)
	if len(got) != 1 {
		t.Fatal("no match")
	}
	ev := got[0].Event()
	if ev.Type != "cep.ab" {
		t.Errorf("type = %q", ev.Type)
	}
	if v, _ := ev.Get("a_x"); !val.Equal(v, val.Int(1)) {
		t.Errorf("a_x = %v", v)
	}
	if v, _ := ev.Get("b_y"); !val.Equal(v, val.Int(2)) {
		t.Errorf("b_y = %v", v)
	}
	if v, _ := ev.Get("pattern"); !val.Equal(v, val.String("ab")) {
		t.Errorf("pattern attr = %v", v)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewPattern("x").Build(); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := NewPattern("x").Next("", "A", "").Build(); err == nil {
		t.Error("empty alias accepted")
	}
	if _, err := NewPattern("x").Next("a", "A", "").Next("a", "B", "").Build(); err == nil {
		t.Error("duplicate alias accepted")
	}
	if _, err := NewPattern("x").Next("a", "A", "((").Build(); err == nil {
		t.Error("bad guard accepted")
	}
	if _, err := NewPattern("x").Unless("n", "N", "").Next("a", "A", "").Build(); err == nil {
		t.Error("leading negation accepted")
	}
	if _, err := NewPattern("x").Next("a", "A", "").Unless("n", "N", "").Build(); err == nil {
		t.Error("trailing negation accepted")
	}
}

func TestMaxRunsBound(t *testing.T) {
	p := NewPattern("ab").
		Next("a", "A", "").
		Next("b", "B", "").
		Strategy(SkipTillAny).
		MustBuild()
	m := NewMatcher(p)
	m.MaxRuns = 10
	for i := 0; i < 100; i++ {
		m.Feed(mk("A", i, nil))
	}
	if m.ActiveRuns() > 10 {
		t.Errorf("runs = %d, exceeds cap", m.ActiveRuns())
	}
	if m.Dropped() == 0 {
		t.Error("expected dropped runs")
	}
}

// TestSkipTillAnyAgainstBruteForce cross-checks the NFA against a
// brute-force subsequence enumerator on random streams.
func TestSkipTillAnyAgainstBruteForce(t *testing.T) {
	p := NewPattern("abc").
		Next("a", "A", "").
		Next("b", "B", "b.v > a.v").
		Next("c", "C", "c.v > b.v").
		Strategy(SkipTillAny).
		Within(10 * time.Second).
		MustBuild()

	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var evs []*event.Event
		for i := 0; i < 18; i++ {
			typ := []string{"A", "B", "C"}[rng.Intn(3)]
			evs = append(evs, mk(typ, i, map[string]any{"v": rng.Intn(6)}))
		}
		m := NewMatcher(p)
		m.MaxRuns = 1 << 20
		nfa := len(feedAll(m, evs...))

		// Brute force: all index triples i<j<k.
		brute := 0
		getV := func(e *event.Event) int64 {
			v, _ := e.Get("v")
			n, _ := v.AsInt()
			return n
		}
		for i := 0; i < len(evs); i++ {
			if evs[i].Type != "A" {
				continue
			}
			for j := i + 1; j < len(evs); j++ {
				if evs[j].Type != "B" || getV(evs[j]) <= getV(evs[i]) {
					continue
				}
				for k := j + 1; k < len(evs); k++ {
					if evs[k].Type != "C" || getV(evs[k]) <= getV(evs[j]) {
						continue
					}
					if evs[k].Time.Sub(evs[i].Time) <= 10*time.Second {
						brute++
					}
				}
			}
		}
		if nfa != brute {
			t.Errorf("seed %d: nfa=%d brute=%d", seed, nfa, brute)
		}
	}
}

func TestAnyEventTypeStep(t *testing.T) {
	p := NewPattern("anything").
		Next("a", "", "v > 5").
		MustBuild()
	m := NewMatcher(p)
	got := feedAll(m,
		mk("X", 0, map[string]any{"v": 3}),
		mk("Y", 1, map[string]any{"v": 7}),
	)
	if len(got) != 1 || got[0].Bindings["a"].Type != "Y" {
		t.Errorf("matches = %v", got)
	}
}

func TestSingleStepPatternEveryMatch(t *testing.T) {
	p := NewPattern("one").Next("a", "A", "").MustBuild()
	m := NewMatcher(p)
	got := feedAll(m, mk("A", 0, nil), mk("A", 1, nil), mk("B", 2, nil))
	if len(got) != 2 {
		t.Errorf("matches = %d, want 2", len(got))
	}
}

func TestManyPatternsThroughput(t *testing.T) {
	// Smoke test that a batch of matchers handles a burst without
	// unbounded growth.
	var ms []*Matcher
	for i := 0; i < 10; i++ {
		p := NewPattern(fmt.Sprintf("p%d", i)).
			Next("a", "trade", fmt.Sprintf("sym = 'S%d'", i)).
			Next("b", "trade", fmt.Sprintf("sym = 'S%d' AND price > a.price", i)).
			Within(time.Minute).
			MustBuild()
		ms = append(ms, NewMatcher(p))
	}
	for i := 0; i < 1000; i++ {
		ev := mk("trade", i, map[string]any{
			"sym":   fmt.Sprintf("S%d", i%10),
			"price": i % 17,
		})
		for _, m := range ms {
			m.Feed(ev)
		}
	}
	for _, m := range ms {
		if m.ActiveRuns() > 4096 {
			t.Errorf("runs grew unbounded: %d", m.ActiveRuns())
		}
	}
}
