// Package cep implements complex event processing: declarative patterns
// over event streams, the capability the paper identifies continuous
// queries as the "comprehensive base" for (§2.2.c.i.3).
//
// A pattern is a sequence of steps, each matching an event type with an
// optional guard expression. Guards can reference attributes of the
// current event (bare names) and of earlier bound steps ("a.price").
// Negated steps express absence: if a matching event arrives while the
// run waits for the following positive step, the run dies.
//
// Patterns run under one of the standard event-selection strategies:
//
//   - Strict: the very next fed event must match the next step.
//   - SkipTillNext: non-matching events are ignored; the first match
//     advances the run (single path).
//   - SkipTillAny: every match forks the run, enumerating all
//     combinations (bounded by MaxRuns).
//
// A WITHIN horizon bounds the time between the first and last events of
// a match.
package cep

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/expr"
	"eventdb/internal/val"
)

// Strategy selects how non-matching events are treated mid-pattern.
type Strategy int

// Event-selection strategies.
const (
	SkipTillNext Strategy = iota
	SkipTillAny
	Strict
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case SkipTillNext:
		return "skip-till-next"
	case SkipTillAny:
		return "skip-till-any"
	case Strict:
		return "strict"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Step is one element of a pattern.
type Step struct {
	Alias     string
	EventType string // "" matches any type
	Guard     string // "" means unconditional
	Negated   bool

	guard *expr.Predicate
}

// Pattern is a compiled pattern definition.
type Pattern struct {
	Name     string
	Steps    []Step
	Within   time.Duration
	Strategy Strategy

	positive []int // indexes of positive steps, in order
}

// Builder assembles a Pattern.
type Builder struct {
	p   Pattern
	err error
}

// NewPattern starts building a pattern.
func NewPattern(name string) *Builder {
	return &Builder{p: Pattern{Name: name}}
}

// Next appends a positive step.
func (b *Builder) Next(alias, eventType, guard string) *Builder {
	b.addStep(Step{Alias: alias, EventType: eventType, Guard: guard})
	return b
}

// Unless appends a negated (absence) step: while the run waits for the
// following positive step, an event matching this one kills it.
func (b *Builder) Unless(alias, eventType, guard string) *Builder {
	b.addStep(Step{Alias: alias, EventType: eventType, Guard: guard, Negated: true})
	return b
}

func (b *Builder) addStep(s Step) {
	if b.err != nil {
		return
	}
	if s.Alias == "" {
		b.err = errors.New("cep: step alias required")
		return
	}
	for _, existing := range b.p.Steps {
		if existing.Alias == s.Alias {
			b.err = fmt.Errorf("cep: duplicate alias %q", s.Alias)
			return
		}
	}
	if s.Guard != "" {
		g, err := expr.Compile(s.Guard)
		if err != nil {
			b.err = fmt.Errorf("cep: step %q: %w", s.Alias, err)
			return
		}
		s.guard = g
	}
	b.p.Steps = append(b.p.Steps, s)
}

// Within bounds the time between the first and last matched events.
func (b *Builder) Within(d time.Duration) *Builder {
	b.p.Within = d
	return b
}

// Strategy sets the event-selection strategy (default SkipTillNext).
func (b *Builder) Strategy(s Strategy) *Builder {
	b.p.Strategy = s
	return b
}

// Build validates and returns the pattern.
func (b *Builder) Build() (*Pattern, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.p
	for i, s := range p.Steps {
		if !s.Negated {
			p.positive = append(p.positive, i)
		}
	}
	if len(p.positive) == 0 {
		return nil, errors.New("cep: pattern needs at least one positive step")
	}
	if p.Steps[0].Negated {
		return nil, errors.New("cep: pattern cannot start with a negated step")
	}
	if p.Steps[len(p.Steps)-1].Negated {
		return nil, errors.New("cep: pattern cannot end with a negated step")
	}
	return &p, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Pattern {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Match is one completed pattern instance.
type Match struct {
	Pattern  string
	Bindings map[string]*event.Event
	Start    time.Time
	End      time.Time
}

// Event renders the match as a composite event ("cep.<pattern>") whose
// attributes are the bound events' attributes prefixed by alias.
func (m *Match) Event() *event.Event {
	attrs := make(map[string]val.Value)
	attrs["pattern"] = val.String(m.Pattern)
	for alias, ev := range m.Bindings {
		attrs[alias+"_type"] = val.String(ev.Type)
		attrs[alias+"_id"] = val.Int(int64(ev.ID))
		for k, v := range ev.Attrs {
			attrs[alias+"_"+k] = v
		}
	}
	out := &event.Event{
		ID:     event.NextID(),
		Type:   "cep." + m.Pattern,
		Source: "cep",
		Time:   m.End,
		Attrs:  attrs,
	}
	return out
}

// run is a partial match.
type run struct {
	nextPos  int // index into p.positive
	bindings []*event.Event
	start    time.Time
}

// Matcher feeds a stream through one pattern. Not safe for concurrent
// use; wrap with a mutex or shard by key externally.
type Matcher struct {
	p *Pattern
	// MaxRuns caps simultaneous partial matches (SkipTillAny can fork
	// exponentially); oldest runs are dropped beyond it.
	MaxRuns int
	runs    []*run
	dropped uint64
}

// NewMatcher creates a matcher with a default MaxRuns of 4096.
func NewMatcher(p *Pattern) *Matcher {
	return &Matcher{p: p, MaxRuns: 4096}
}

// Dropped reports how many partial runs were discarded due to MaxRuns.
func (m *Matcher) Dropped() uint64 { return m.dropped }

// ActiveRuns reports current partial matches (diagnostics).
func (m *Matcher) ActiveRuns() int { return len(m.runs) }

// Advance expires partial runs whose WITHIN window has passed as of
// now, returning how many were pruned. Feed performs the same sweep
// with each event's time; Advance lets a clock do it on quiet streams
// so dead runs don't pin their bound events until the next arrival.
func (m *Matcher) Advance(now time.Time) int {
	if m.p.Within <= 0 || len(m.runs) == 0 {
		return 0
	}
	kept := m.runs[:0]
	for _, r := range m.runs {
		if now.Sub(r.start) <= m.p.Within {
			kept = append(kept, r)
		}
	}
	pruned := len(m.runs) - len(kept)
	for i := len(kept); i < len(m.runs); i++ {
		m.runs[i] = nil
	}
	m.runs = kept
	return pruned
}

// Feed processes one event and returns matches completed by it.
// Events must be fed in nondecreasing time order for WITHIN semantics.
func (m *Matcher) Feed(ev *event.Event) []*Match {
	p := m.p
	var matches []*Match
	var alive []*run

	// Expire runs that can no longer complete inside the window.
	if p.Within > 0 {
		kept := m.runs[:0]
		for _, r := range m.runs {
			if ev.Time.Sub(r.start) <= p.Within {
				kept = append(kept, r)
			}
		}
		m.runs = kept
	}

	stepMatches := func(si int, r *run) bool {
		s := &p.Steps[si]
		if s.EventType != "" && s.EventType != ev.Type {
			return false
		}
		if s.guard != nil {
			var bindings []*event.Event
			if r != nil {
				bindings = r.bindings
			}
			ok, err := s.guard.Match(&guardResolver{p: p, bindings: bindings, current: ev})
			if err != nil || !ok {
				return false
			}
		}
		return true
	}

	complete := func(r *run) *Match {
		b := make(map[string]*event.Event, len(p.positive))
		for i, si := range p.positive {
			b[p.Steps[si].Alias] = r.bindings[i]
		}
		return &Match{
			Pattern:  p.Name,
			Bindings: b,
			Start:    r.start,
			End:      ev.Time,
		}
	}

	advance := func(r *run) (*run, *Match) {
		nr := &run{
			nextPos:  r.nextPos + 1,
			bindings: append(append([]*event.Event(nil), r.bindings...), ev),
			start:    r.start,
		}
		if nr.nextPos == len(p.positive) {
			return nil, complete(nr)
		}
		return nr, nil
	}

	for _, r := range m.runs {
		si := p.positive[r.nextPos]
		// Negated steps guarding this position: any step between the
		// previous positive step and this one.
		killed := false
		lo := 0
		if r.nextPos > 0 {
			lo = p.positive[r.nextPos-1] + 1
		}
		for ni := lo; ni < si; ni++ {
			if p.Steps[ni].Negated && stepMatches(ni, r) {
				killed = true
				break
			}
		}
		if killed {
			continue
		}
		if stepMatches(si, r) {
			adv, match := advance(r)
			if match != nil {
				matches = append(matches, match)
			} else {
				alive = append(alive, adv)
			}
			switch p.Strategy {
			case SkipTillAny:
				alive = append(alive, r) // fork: also keep waiting
			case SkipTillNext:
				// single path: the original run is consumed
			case Strict:
				// consumed as well
			}
		} else {
			switch p.Strategy {
			case Strict:
				// contiguity violated: run dies
			default:
				alive = append(alive, r)
			}
		}
	}

	// Try to start a new run at step 0.
	if stepMatches(p.positive[0], nil) {
		r0 := &run{start: ev.Time}
		adv, match := advance(r0)
		if match != nil {
			matches = append(matches, match)
		} else {
			alive = append(alive, adv)
		}
	}

	if m.MaxRuns > 0 && len(alive) > m.MaxRuns {
		m.dropped += uint64(len(alive) - m.MaxRuns)
		alive = alive[len(alive)-m.MaxRuns:]
	}
	m.runs = alive
	return matches
}

// guardResolver resolves "alias.attr" against bound steps and bare
// names (plus $-envelope fields) against the current event.
type guardResolver struct {
	p        *Pattern
	bindings []*event.Event
	current  *event.Event
}

func (g *guardResolver) Get(name string) (val.Value, bool) {
	if i := strings.IndexByte(name, '.'); i > 0 {
		alias, attr := name[:i], name[i+1:]
		for bi, si := range g.p.positive {
			if bi >= len(g.bindings) {
				break
			}
			if g.p.Steps[si].Alias == alias {
				return g.bindings[bi].Get(attr)
			}
		}
		// Unbound alias (e.g. guard referencing itself): fall through to
		// the current event when the alias is the step being tested.
		return g.current.Get(attr)
	}
	return g.current.Get(name)
}
