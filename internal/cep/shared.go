// Shared-automaton pattern matching: the whole registered pattern set
// compiles into one NFA instead of one Matcher per pattern, so per-event
// cost scales with matching work rather than pattern count — the CEP
// analog of the indexed flat-predicate matcher in internal/rules.
//
// Structure. Patterns with the same strategy share a prefix trie: a
// trie edge is one positive step plus the negated steps guarding it,
// and two patterns share a node exactly when their step sequences agree
// up to that point (alias, type, guard source, and negations all
// included in the edge signature). A partial match is one *instance*
// parked at a node; it stands in for one partial run of every pattern
// whose path passes through that node, so a prefix shared by a thousand
// patterns is tracked once, not a thousand times.
//
// Indexing. Each node indexes its outgoing edges by event type, and
// within a type by the guard's first `field = literal` conjunct (the
// same analysis internal/rules uses), so an event only touches edges
// its type and attributes could actually advance. Nodes holding live
// instances register in a wake index keyed by the event types relevant
// to them; all other nodes are never visited.
//
// Expiry. Every instance carries a deadline — its start time plus the
// largest WITHIN among patterns reachable from its node — kept in a
// timer heap, so pruning is O(log n) pops instead of a per-event sweep.
// The heap deadline is conservative (a shared node's horizon is the max
// over its patterns); exact per-pattern WITHIN is enforced when a match
// is emitted, which is what makes match output identical to independent
// Matchers.
//
// Semantics relative to Matcher (pinned by the differential test):
//
//   - SkipTillNext "consumes" a run when it advances: the shared form
//     blocks the advanced edge on the parent instance, so other
//     patterns sharing the node keep waiting while that one cannot
//     spuriously re-advance.
//   - A negated step firing kills only the runs waiting on its edge —
//     again a per-edge block, not instance death.
//   - Strict consumes the instance entirely: matching edges fork
//     children, then the parent dies.
//   - Patterns registered after an instance started cannot claim it
//     (registration sequence gating), matching the fact that a fresh
//     Matcher starts with no runs.
//
// Zero-alloc feed. Instances and their binding slices are pooled,
// per-feed scratch (candidate edges, wake-node list, index key buffer)
// is reused, and new instances are epoch-stamped so the creating event
// never re-feeds them. An event that advances nothing allocates
// nothing; CI pins this with AllocsPerRun.
package cep

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/expr"
	"eventdb/internal/val"
)

// defaultMaxInstances caps live partial matches across all patterns.
const defaultMaxInstances = 1 << 20

// Shared is a single automaton over many registered patterns. Not safe
// for concurrent use; wrap with a mutex (internal/core does).
type Shared struct {
	// MaxInstances caps simultaneous partial matches across every
	// pattern; the oldest instance is dropped beyond it (SkipTillAny can
	// fork combinatorially). Default 1<<20.
	MaxInstances int

	roots    [3]*node // one prefix trie per strategy
	patterns map[string]*patEntry
	seq      uint64 // registration sequence, gates new patterns off old instances
	epoch    uint64 // feed sequence, keeps the creating event off new instances

	// wake maps an event type to the nodes holding instances that type
	// could advance or kill; wakeAny holds nodes relevant to every type
	// (strict nodes, any-type steps). Inner maps are retained when
	// emptied so steady-state churn stays allocation-free.
	wake    map[string]map[*node]struct{}
	wakeAny map[*node]struct{}

	timers deadlineHeap

	// Global age list (creation order) for MaxInstances eviction.
	oldest, newest *instance
	ninst          int

	pool []*instance

	matches     []*Match
	nodeScratch []*node
	candScratch []*edge
	negScratch  []*edge
	keyBuf      []byte
	res         sharedResolver

	matchCount uint64
	pruned     uint64
	dropped    uint64
}

// NewShared creates an empty shared automaton.
func NewShared() *Shared {
	return &Shared{
		MaxInstances: defaultMaxInstances,
		patterns:     make(map[string]*patEntry),
		wake:         make(map[string]map[*node]struct{}),
		wakeAny:      make(map[*node]struct{}),
	}
}

// SharedStats is a point-in-time counter snapshot.
type SharedStats struct {
	Patterns  int    // registered patterns
	Instances int    // live partial matches
	Matches   uint64 // matches emitted since creation
	Pruned    uint64 // instances expired by the WITHIN horizon
	Dropped   uint64 // instances evicted by MaxInstances
}

// Stats reports registration and matching counters.
func (s *Shared) Stats() SharedStats {
	return SharedStats{
		Patterns:  len(s.patterns),
		Instances: s.ninst,
		Matches:   s.matchCount,
		Pruned:    s.pruned,
		Dropped:   s.dropped,
	}
}

// Has reports whether a pattern name is registered.
func (s *Shared) Has(name string) bool {
	_, ok := s.patterns[name]
	return ok
}

// node is one trie state: the set of (strategy, step-prefix) classes a
// partial match can be in.
type node struct {
	strategy Strategy
	depth    int      // positive steps bound on arrival
	aliases  []string // positive aliases along the path, in order

	edges    []*edge
	bySig    map[string]*edge
	byType   map[string]*bucket // positive-step type → candidate edges
	anyEdges []*edge            // type-wildcard steps, always candidates
	negEdges []*edge            // edges carrying negated steps

	accepts []*patEntry // patterns completed on arrival here

	npat      int           // patterns whose path passes through (for Remove)
	maxWithin time.Duration // largest bounded WITHIN among them
	unbounded int           // of which, patterns with no WITHIN

	head  *instance // live instances parked here
	ninst int

	inWake     bool
	wakeAnyReg bool
	wakeKeys   []string
}

// edge is one trie transition: a positive step plus the negated steps
// that guard the wait for it.
type edge struct {
	sig       string
	from, to  *node
	eventType string // "" matches any type
	alias     string
	guard     *expr.Predicate
	negs      []negStep
}

type negStep struct {
	eventType string
	guard     *expr.Predicate
}

// bucket indexes one (node, event type)'s candidate edges: guards with
// a `field = literal` conjunct hang off an equality index keyed like
// internal/rules; the rest are scanned.
type bucket struct {
	scan     []*edge
	eqFields []string
	eq       map[string]map[string][]*edge
}

// patEntry is one registered pattern's place in the trie.
type patEntry struct {
	p     *Pattern
	seq   uint64
	nodes []*node // path, one per positive step (root excluded)
	edges []*edge
}

// instance is one live partial match, standing in for a partial run of
// every pattern reachable from its node.
type instance struct {
	node     *node
	bindings []*event.Event // one per positive step taken
	start    time.Time
	deadline time.Time
	seq      uint64  // registration watermark at birth
	born     uint64  // feed epoch at creation
	blocked  []*edge // consumed (SkipTillNext) or killed (negation) edges
	heapIdx  int     // -1 when not in the timer heap

	prev, next   *instance // node membership list
	gprev, gnext *instance // global age list
}

func (i *instance) isBlocked(e *edge) bool {
	for _, b := range i.blocked {
		if b == e {
			return true
		}
	}
	return false
}

// Add registers a built pattern, sharing trie prefixes with already
// registered patterns of the same strategy.
func (s *Shared) Add(p *Pattern) error {
	if p == nil || len(p.positive) == 0 {
		return errors.New("cep: pattern must come from Builder.Build")
	}
	if _, dup := s.patterns[p.Name]; dup {
		return fmt.Errorf("cep: pattern %q already registered", p.Name)
	}
	s.seq++
	ent := &patEntry{p: p, seq: s.seq}
	n := s.root(p.Strategy)
	for k, si := range p.positive {
		lo := 0
		if k > 0 {
			lo = p.positive[k-1] + 1
		}
		seg := p.Steps[lo : si+1]
		sig := segmentSig(seg)
		e := n.bySig[sig]
		if e == nil {
			e = newEdge(n, seg, sig)
			n.edges = append(n.edges, e)
			n.bySig[sig] = e
			n.indexEdge(e)
			s.refreshWake(n)
		}
		n = e.to
		n.npat++
		if p.Within <= 0 {
			n.unbounded++
		} else if p.Within > n.maxWithin {
			n.maxWithin = p.Within
		}
		ent.nodes = append(ent.nodes, n)
		ent.edges = append(ent.edges, e)
	}
	n.accepts = append(n.accepts, ent)
	s.patterns[p.Name] = ent
	return nil
}

// Remove unregisters a pattern, unlinking trie suffixes it no longer
// shares and freeing their instances.
func (s *Shared) Remove(name string) error {
	ent, ok := s.patterns[name]
	if !ok {
		return fmt.Errorf("cep: no pattern %q", name)
	}
	delete(s.patterns, name)
	term := ent.nodes[len(ent.nodes)-1]
	for i, pe := range term.accepts {
		if pe == ent {
			term.accepts = append(term.accepts[:i], term.accepts[i+1:]...)
			break
		}
	}
	for i := len(ent.nodes) - 1; i >= 0; i-- {
		n := ent.nodes[i]
		n.npat--
		if ent.p.Within <= 0 {
			n.unbounded--
		}
		// maxWithin is deliberately not recomputed: a stale-large horizon
		// only delays pruning, and exact WITHIN is enforced at emit time.
		if n.npat == 0 {
			for n.head != nil {
				s.freeInstance(n.head)
			}
			s.unlinkEdge(ent.edges[i])
		}
	}
	return nil
}

func (s *Shared) root(st Strategy) *node {
	if s.roots[st] == nil {
		s.roots[st] = &node{
			strategy: st,
			bySig:    make(map[string]*edge),
			byType:   make(map[string]*bucket),
		}
	}
	return s.roots[st]
}

// segmentSig renders one trie-edge signature: the negated steps then the
// positive step, each as (negated, alias, type, guard source). Patterns
// share an edge exactly when these agree.
func segmentSig(steps []Step) string {
	var b strings.Builder
	for i := range steps {
		st := &steps[i]
		if st.Negated {
			b.WriteByte('!')
		}
		b.WriteString(st.Alias)
		b.WriteByte(0x1f)
		b.WriteString(st.EventType)
		b.WriteByte(0x1f)
		b.WriteString(st.Guard)
		b.WriteByte(0x1e)
	}
	return b.String()
}

func newEdge(from *node, seg []Step, sig string) *edge {
	pos := seg[len(seg)-1]
	e := &edge{sig: sig, from: from, eventType: pos.EventType, alias: pos.Alias, guard: pos.guard}
	for i := range seg[:len(seg)-1] {
		e.negs = append(e.negs, negStep{eventType: seg[i].EventType, guard: seg[i].guard})
	}
	aliases := make([]string, 0, len(from.aliases)+1)
	aliases = append(append(aliases, from.aliases...), pos.Alias)
	e.to = &node{
		strategy: from.strategy,
		depth:    from.depth + 1,
		aliases:  aliases,
		bySig:    make(map[string]*edge),
		byType:   make(map[string]*bucket),
	}
	return e
}

// indexEdge files an edge under its node's type/predicate index.
func (n *node) indexEdge(e *edge) {
	if len(e.negs) > 0 {
		n.negEdges = append(n.negEdges, e)
	}
	if e.eventType == "" {
		n.anyEdges = append(n.anyEdges, e)
		return
	}
	b := n.byType[e.eventType]
	if b == nil {
		b = &bucket{}
		n.byType[e.eventType] = b
	}
	if e.guard != nil {
		// Anchor on the first equality conjunct over a bare (current-
		// event) field: guard ⇒ field = literal, so a mismatched anchor
		// means the guard is false and the edge can be skipped unseen.
		for _, eq := range e.guard.EqPreds {
			if strings.IndexByte(eq.Field, '.') >= 0 {
				continue // references an earlier binding, not this event
			}
			if b.eq == nil {
				b.eq = make(map[string]map[string][]*edge)
			}
			m := b.eq[eq.Field]
			if m == nil {
				m = make(map[string][]*edge)
				b.eq[eq.Field] = m
				b.eqFields = append(b.eqFields, eq.Field)
			}
			key := string(val.AppendKey(nil, eq.Value))
			m[key] = append(m[key], e)
			return
		}
	}
	b.scan = append(b.scan, e)
}

// unlinkEdge removes an edge (whose subtree is pattern-free) from its
// parent, rebuilding the parent's index and purging stale blocked refs.
func (s *Shared) unlinkEdge(e *edge) {
	n := e.from
	for i, x := range n.edges {
		if x == e {
			n.edges = append(n.edges[:i], n.edges[i+1:]...)
			break
		}
	}
	delete(n.bySig, e.sig)
	n.reindex()
	s.refreshWake(n)
	inst := n.head
	for inst != nil {
		next := inst.next
		for i, b := range inst.blocked {
			if b == e {
				inst.blocked = append(inst.blocked[:i], inst.blocked[i+1:]...)
				break
			}
		}
		if len(inst.blocked) == len(n.edges) {
			s.freeInstance(inst) // nothing left it could ever advance
		}
		inst = next
	}
}

func (n *node) reindex() {
	n.anyEdges = n.anyEdges[:0]
	n.negEdges = n.negEdges[:0]
	for t := range n.byType {
		delete(n.byType, t)
	}
	for _, e := range n.edges {
		n.indexEdge(e)
	}
}

// refreshWake recomputes which event types are relevant to a node and,
// if it holds instances, re-registers it in the wake index.
func (s *Shared) refreshWake(n *node) {
	live := n.inWake
	if live {
		s.dropWake(n)
	}
	if live || n.ninst > 0 {
		s.addWake(n)
	}
}

func (s *Shared) addWake(n *node) {
	n.wakeKeys = n.wakeKeys[:0]
	n.wakeAnyReg = n.strategy == Strict // strict instances react to every event
	for _, e := range n.edges {
		if n.wakeAnyReg {
			break
		}
		n.noteWakeType(e.eventType)
		for _, ng := range e.negs {
			n.noteWakeType(ng.eventType)
		}
	}
	if n.wakeAnyReg {
		s.wakeAny[n] = struct{}{}
	} else {
		for _, t := range n.wakeKeys {
			m := s.wake[t]
			if m == nil {
				m = make(map[*node]struct{})
				s.wake[t] = m
			}
			m[n] = struct{}{}
		}
	}
	n.inWake = true
}

func (s *Shared) dropWake(n *node) {
	if !n.inWake {
		return
	}
	if n.wakeAnyReg {
		delete(s.wakeAny, n)
	} else {
		for _, t := range n.wakeKeys {
			delete(s.wake[t], n)
		}
	}
	n.inWake = false
}

// noteWakeType records one relevant event type, collapsing to the
// any-type registration on a wildcard. Allocation-free after the
// wakeKeys slice has warmed (wake registration happens on the feed hot
// path whenever a node gains its first instance).
func (n *node) noteWakeType(t string) {
	if n.wakeAnyReg {
		return
	}
	if t == "" {
		n.wakeAnyReg = true
		n.wakeKeys = n.wakeKeys[:0]
		return
	}
	if !containsStr(n.wakeKeys, t) {
		n.wakeKeys = append(n.wakeKeys, t)
	}
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Advance prunes instances whose conservative WITHIN horizon has passed
// as of now, returning how many were freed. Feed calls it with each
// event's time; an engine clock should call it on quiet streams so dead
// partials don't pin memory.
func (s *Shared) Advance(now time.Time) int {
	pruned := 0
	for len(s.timers) > 0 && s.timers[0].deadline.Before(now) {
		s.freeInstance(s.timers[0])
		pruned++
	}
	s.pruned += uint64(pruned)
	return pruned
}

// Feed processes one event against every registered pattern and returns
// the matches it completed. Events must arrive in nondecreasing time
// order for WITHIN semantics. The returned slice is reused by the next
// Feed call.
func (s *Shared) Feed(ev *event.Event) []*Match {
	s.epoch++
	s.Advance(ev.Time)
	s.matches = s.matches[:0]
	if s.ninst > 0 {
		// Snapshot the woken nodes first: feeding mutates the wake sets
		// (emptied nodes deregister, children register).
		s.nodeScratch = s.nodeScratch[:0]
		for n := range s.wake[ev.Type] {
			s.nodeScratch = append(s.nodeScratch, n)
		}
		for n := range s.wakeAny {
			s.nodeScratch = append(s.nodeScratch, n)
		}
		for _, n := range s.nodeScratch {
			s.feedNode(n, ev)
		}
	}
	for _, r := range s.roots {
		if r != nil {
			s.startRuns(r, ev)
		}
	}
	// Cap eviction is deferred to here so freeing the oldest instance
	// can never invalidate a node list mid-iteration above.
	for s.MaxInstances > 0 && s.ninst > s.MaxInstances {
		s.dropped++
		s.freeInstance(s.oldest)
	}
	s.matchCount += uint64(len(s.matches))
	return s.matches
}

// candidates collects the edges of n that ev's type and indexed
// attributes could advance, into the reused candScratch.
func (s *Shared) candidates(n *node, ev *event.Event) []*edge {
	cands := s.candScratch[:0]
	if b := n.byType[ev.Type]; b != nil {
		for _, f := range b.eqFields {
			v, ok := ev.Get(f)
			if !ok {
				continue
			}
			s.keyBuf = val.AppendKey(s.keyBuf[:0], v)
			cands = append(cands, b.eq[f][string(s.keyBuf)]...)
		}
		cands = append(cands, b.scan...)
	}
	cands = append(cands, n.anyEdges...)
	s.candScratch = cands
	return cands
}

func (s *Shared) feedNode(n *node, ev *event.Event) {
	if n.ninst == 0 {
		return
	}
	cands := s.candidates(n, ev)
	negs := s.negScratch[:0]
	for _, e := range n.negEdges {
		for _, ng := range e.negs {
			if ng.eventType == "" || ng.eventType == ev.Type {
				negs = append(negs, e)
				break
			}
		}
	}
	s.negScratch = negs
	strict := n.strategy == Strict
	if len(cands) == 0 && len(negs) == 0 && !strict {
		return
	}
	inst := n.head
	for inst != nil {
		next := inst.next // feedInstance may free inst
		if inst.born != s.epoch {
			s.feedInstance(n, inst, ev, cands, negs, strict)
		}
		inst = next
	}
}

func (s *Shared) feedInstance(n *node, inst *instance, ev *event.Event, cands, negs []*edge, strict bool) {
	// Negated steps first: killing an edge suppresses its advance on
	// this same event, exactly as Matcher checks negation before the
	// positive step.
	for _, e := range negs {
		if inst.isBlocked(e) {
			continue
		}
		for _, ng := range e.negs {
			if ng.eventType != "" && ng.eventType != ev.Type {
				continue
			}
			if ng.guard != nil && !s.guardOK(ng.guard, n, inst.bindings, ev) {
				continue
			}
			inst.blocked = append(inst.blocked, e)
			break
		}
	}
	for _, e := range cands {
		if inst.isBlocked(e) {
			continue
		}
		if e.guard != nil && !s.guardOK(e.guard, n, inst.bindings, ev) {
			continue
		}
		s.spawn(e, inst.bindings, inst.start, inst.seq, ev)
		if n.strategy == SkipTillNext {
			// Consumed: the runs waiting on this edge advanced into the
			// child; the parent stays only for its other edges.
			inst.blocked = append(inst.blocked, e)
		}
	}
	if strict {
		// Every waiting run either advanced (child spawned) or died on
		// the contiguity violation; the parent is finished either way.
		s.freeInstance(inst)
		return
	}
	if len(inst.blocked) == len(n.edges) {
		s.freeInstance(inst)
	}
}

// startRuns tries to start new runs at a strategy root, one instance
// per matching first step.
func (s *Shared) startRuns(root *node, ev *event.Event) {
	for _, e := range s.candidates(root, ev) {
		if e.guard != nil && !s.guardOK(e.guard, root, nil, ev) {
			continue
		}
		s.spawn(e, nil, ev.Time, s.seq, ev)
	}
}

// spawn advances along an edge: emits matches for patterns accepted at
// the target (exact WITHIN enforced here) and, if the target has
// further steps, parks a pooled child instance there.
func (s *Shared) spawn(e *edge, parent []*event.Event, start time.Time, seq uint64, ev *event.Event) {
	to := e.to
	for _, pe := range to.accepts {
		if pe.seq > seq {
			continue // registered after this run started
		}
		if pe.p.Within > 0 && ev.Time.Sub(start) > pe.p.Within {
			continue
		}
		b := make(map[string]*event.Event, len(to.aliases))
		for i, al := range to.aliases {
			if i < len(parent) {
				b[al] = parent[i]
			} else {
				b[al] = ev
			}
		}
		s.matches = append(s.matches, &Match{Pattern: pe.p.Name, Bindings: b, Start: start, End: ev.Time})
	}
	if len(to.edges) == 0 {
		return // terminal state: nothing further to wait for
	}
	inst := s.alloc()
	inst.bindings = append(append(inst.bindings, parent...), ev)
	inst.start = start
	inst.seq = seq
	inst.born = s.epoch
	s.attachInstance(inst, to)
}

func (s *Shared) alloc() *instance {
	if k := len(s.pool); k > 0 {
		inst := s.pool[k-1]
		s.pool = s.pool[:k-1]
		return inst
	}
	return &instance{heapIdx: -1}
}

func (s *Shared) attachInstance(inst *instance, n *node) {
	inst.node = n
	inst.prev = nil
	inst.next = n.head
	if n.head != nil {
		n.head.prev = inst
	}
	n.head = inst
	n.ninst++
	if n.ninst == 1 && !n.inWake {
		s.addWake(n)
	}
	inst.gprev = s.newest
	inst.gnext = nil
	if s.newest != nil {
		s.newest.gnext = inst
	} else {
		s.oldest = inst
	}
	s.newest = inst
	s.ninst++
	if n.unbounded == 0 && n.maxWithin > 0 {
		inst.deadline = inst.start.Add(n.maxWithin)
		heap.Push(&s.timers, inst)
	}
}

func (s *Shared) freeInstance(inst *instance) {
	n := inst.node
	if inst.prev != nil {
		inst.prev.next = inst.next
	} else {
		n.head = inst.next
	}
	if inst.next != nil {
		inst.next.prev = inst.prev
	}
	n.ninst--
	if n.ninst == 0 {
		s.dropWake(n)
	}
	if inst.gprev != nil {
		inst.gprev.gnext = inst.gnext
	} else {
		s.oldest = inst.gnext
	}
	if inst.gnext != nil {
		inst.gnext.gprev = inst.gprev
	}
	s.ninst--
	if inst.heapIdx >= 0 {
		heap.Remove(&s.timers, inst.heapIdx)
	}
	inst.node = nil
	inst.prev, inst.next, inst.gprev, inst.gnext = nil, nil, nil, nil
	for i := range inst.bindings {
		inst.bindings[i] = nil // don't pin events from the pool
	}
	inst.bindings = inst.bindings[:0]
	for i := range inst.blocked {
		inst.blocked[i] = nil
	}
	inst.blocked = inst.blocked[:0]
	inst.heapIdx = -1
	s.pool = append(s.pool, inst)
}

func (s *Shared) guardOK(g *expr.Predicate, n *node, bindings []*event.Event, ev *event.Event) bool {
	s.res.aliases = n.aliases
	s.res.bindings = bindings
	s.res.current = ev
	ok, err := g.Match(&s.res)
	return err == nil && ok
}

// sharedResolver mirrors guardResolver: "alias.attr" against bound
// steps, bare names against the current event, unbound aliases falling
// through to the current event.
type sharedResolver struct {
	aliases  []string
	bindings []*event.Event
	current  *event.Event
}

func (r *sharedResolver) Get(name string) (val.Value, bool) {
	if i := strings.IndexByte(name, '.'); i > 0 {
		alias, attr := name[:i], name[i+1:]
		for bi, al := range r.aliases {
			if bi >= len(r.bindings) {
				break
			}
			if al == alias {
				return r.bindings[bi].Get(attr)
			}
		}
		return r.current.Get(attr)
	}
	return r.current.Get(name)
}

// deadlineHeap is a min-heap of instances by deadline.
type deadlineHeap []*instance

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *deadlineHeap) Push(x any) {
	inst := x.(*instance)
	inst.heapIdx = len(*h)
	*h = append(*h, inst)
}
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	inst := old[n-1]
	old[n-1] = nil
	inst.heapIdx = -1
	*h = old[:n-1]
	return inst
}
