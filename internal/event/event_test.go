package event

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eventdb/internal/raceflag"
	"eventdb/internal/val"
)

func TestNextIDMonotonic(t *testing.T) {
	a, b := NextID(), NextID()
	if b <= a {
		t.Errorf("ids not increasing: %d then %d", a, b)
	}
}

func TestNewAndGet(t *testing.T) {
	e := New("trade", map[string]any{"symbol": "ACME", "price": 101.5, "qty": 300})
	if e.Type != "trade" || e.ID == 0 || e.Time.IsZero() {
		t.Fatalf("envelope not populated: %+v", e)
	}
	if v, ok := e.Get("symbol"); !ok || !val.Equal(v, val.String("ACME")) {
		t.Errorf("Get(symbol) = %v, %v", v, ok)
	}
	if _, ok := e.Get("missing"); ok {
		t.Error("Get(missing) should report !ok")
	}
	// Pseudo-attributes.
	if v, ok := e.Get("$type"); !ok || !val.Equal(v, val.String("trade")) {
		t.Errorf("Get($type) = %v", v)
	}
	if v, ok := e.Get("$id"); !ok || !val.Equal(v, val.Int(int64(e.ID))) {
		t.Errorf("Get($id) = %v", v)
	}
	if _, ok := e.Get("$time"); !ok {
		t.Error("Get($time) should succeed")
	}
	if _, ok := e.Get("$source"); !ok {
		t.Error("Get($source) should succeed")
	}
}

func TestNewCheckedRejectsBadTypes(t *testing.T) {
	if _, err := NewChecked("x", map[string]any{"bad": struct{}{}}); err == nil {
		t.Error("expected conversion error")
	}
	defer func() {
		if recover() == nil {
			t.Error("New should panic on bad attr type")
		}
	}()
	New("x", map[string]any{"bad": make(chan int)})
}

func TestWithAttrAndClone(t *testing.T) {
	e := New("a", map[string]any{"k": 1})
	e2 := e.WithAttr("k", val.Int(2))
	if v, _ := e.Get("k"); !val.Equal(v, val.Int(1)) {
		t.Error("WithAttr mutated original")
	}
	if v, _ := e2.Get("k"); !val.Equal(v, val.Int(2)) {
		t.Error("WithAttr did not set value")
	}
	c := e.Clone()
	c.Attrs["k"] = val.Int(99)
	if v, _ := e.Get("k"); !val.Equal(v, val.Int(1)) {
		t.Error("Clone shares attribute map")
	}
}

func TestStringDeterministic(t *testing.T) {
	e := New("t", map[string]any{"b": 2, "a": 1, "c": 3})
	s := e.String()
	if !strings.Contains(s, "a=1, b=2, c=3") {
		t.Errorf("String() not sorted: %s", s)
	}
}

func TestSchemaValidate(t *testing.T) {
	s, err := NewSchema("reading",
		Field{Name: "meter", Kind: val.KindString, Required: true},
		Field{Name: "kwh", Kind: val.KindFloat, Required: true},
		Field{Name: "note", Kind: val.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	ok := New("reading", map[string]any{"meter": "m1", "kwh": 1.5})
	if err := s.Validate(ok); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	// Int satisfies a float field (numeric coercion).
	okInt := New("reading", map[string]any{"meter": "m1", "kwh": 2})
	if err := s.Validate(okInt); err != nil {
		t.Errorf("numeric coercion rejected: %v", err)
	}
	missing := New("reading", map[string]any{"meter": "m1"})
	if err := s.Validate(missing); err == nil {
		t.Error("missing required attribute accepted")
	}
	wrongKind := New("reading", map[string]any{"meter": 7, "kwh": 1.0})
	if err := s.Validate(wrongKind); err == nil {
		t.Error("wrong kind accepted")
	}
	wrongType := New("other", map[string]any{"meter": "m1", "kwh": 1.0})
	if err := s.Validate(wrongType); err == nil {
		t.Error("wrong event type accepted")
	}
	nullReq := New("reading", map[string]any{"meter": nil, "kwh": 1.0})
	if err := s.Validate(nullReq); err == nil {
		t.Error("null required attribute accepted")
	}
	// Optional fields may be absent or null.
	withNote := New("reading", map[string]any{"meter": "m", "kwh": 1.0, "note": nil})
	if err := s.Validate(withNote); err != nil {
		t.Errorf("null optional rejected: %v", err)
	}
}

func TestSchemaConstructionErrors(t *testing.T) {
	if _, err := NewSchema("x", Field{Name: ""}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := NewSchema("x", Field{Name: "a"}, Field{Name: "a"}); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := &Event{
		ID:     42,
		Type:   "t.x",
		Source: "src-1",
		Time:   time.Date(2026, 6, 10, 1, 2, 3, 400, time.UTC),
		Attrs: map[string]val.Value{
			"s":  val.String("hello"),
			"i":  val.Int(-7),
			"f":  val.Float(2.5),
			"b":  val.Bool(true),
			"by": val.Bytes([]byte{1, 2, 3}),
			"t":  val.Time(time.Unix(100, 5).UTC()),
			"n":  val.Null,
		},
	}
	buf := Encode(nil, e)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if got.ID != e.ID || got.Type != e.Type || got.Source != e.Source || !got.Time.Equal(e.Time) {
		t.Errorf("envelope mismatch: %+v vs %+v", got, e)
	}
	if len(got.Attrs) != len(e.Attrs) {
		t.Fatalf("attr count %d vs %d", len(got.Attrs), len(e.Attrs))
	}
	for k, want := range e.Attrs {
		gv, ok := got.Attrs[k]
		if !ok {
			t.Errorf("missing attr %q", k)
			continue
		}
		if want.IsNull() {
			if !gv.IsNull() {
				t.Errorf("attr %q: got %v want null", k, gv)
			}
			continue
		}
		if !val.Equal(gv, want) {
			t.Errorf("attr %q: got %v want %v", k, gv, want)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	e1 := New("t", map[string]any{"a": 1, "b": 2})
	e2 := e1.Clone()
	if string(Encode(nil, e1)) != string(Encode(nil, e2)) {
		t.Error("encoding not canonical across clones")
	}
}

func TestDecodeErrors(t *testing.T) {
	e := New("t", map[string]any{"a": 1})
	buf := Encode(nil, e)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			// Some prefixes may decode if attr count is reached early;
			// only the full buffer is guaranteed valid. Skip those.
			got, n, _ := Decode(buf[:cut])
			if got != nil && n == cut {
				continue
			}
			t.Errorf("truncated decode at %d succeeded incorrectly", cut)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("decode of empty buffer should fail")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(typ, src, key string, iv int64, sv string) bool {
		e := &Event{
			ID:     NextID(),
			Type:   typ,
			Source: src,
			Time:   time.Unix(0, iv).UTC(),
			Attrs: map[string]val.Value{
				key:          val.Int(iv),
				key + "\x00": val.String(sv),
			},
		}
		buf := Encode(nil, e)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Type == typ && got.Source == src && len(got.Attrs) == len(e.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := New("trade", map[string]any{
		"symbol": "ACME", "price": 99.25, "qty": 10, "flag": true, "note": nil,
	})
	e.Source = "feed-1"
	data, err := MarshalJSONEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONEvent(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "trade" || got.Source != "feed-1" || got.ID != e.ID {
		t.Errorf("envelope mismatch: %+v", got)
	}
	if v, _ := got.Get("qty"); !val.Equal(v, val.Int(10)) {
		t.Errorf("integral JSON number should be int, got %v (%s)", v, v.Kind())
	}
	if v, _ := got.Get("price"); !val.Equal(v, val.Float(99.25)) {
		t.Errorf("price = %v", v)
	}
	if v, _ := got.Get("flag"); !val.Equal(v, val.Bool(true)) {
		t.Errorf("flag = %v", v)
	}
}

func TestUnmarshalJSONForeign(t *testing.T) {
	// A foreign producer that knows nothing of our ID scheme.
	got, err := UnmarshalJSONEvent([]byte(`{"type":"alert","attrs":{"level":3,"msg":"hot"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID == 0 {
		t.Error("missing ID should be assigned")
	}
	if got.Time.IsZero() {
		t.Error("missing time should default to now")
	}
	if _, err := UnmarshalJSONEvent([]byte(`{"attrs":{}}`)); err == nil {
		t.Error("missing type should fail")
	}
	if _, err := UnmarshalJSONEvent([]byte(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalJSONEvent([]byte(`{"type":"x","time":"not-a-time"}`)); err == nil {
		t.Error("bad time should fail")
	}
	if _, err := UnmarshalJSONEvent([]byte(`{"type":"x","attrs":{"o":{"nested":1}}}`)); err == nil {
		t.Error("nested object attr should fail")
	}
}

// --- encode-once payload cache ------------------------------------------

func TestEncodedJSONMatchesMarshal(t *testing.T) {
	e := New("trade", map[string]any{"sym": "ACME", "price": 1.5})
	want, err := MarshalJSONEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EncodedJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("EncodedJSON = %s, want %s", got, want)
	}
}

func TestEncodedJSONCachedExactlyOnce(t *testing.T) {
	e := New("t", map[string]any{"a": 1, "b": "x"})
	first, err := e.EncodedJSON()
	if err != nil {
		t.Fatal(err)
	}
	second, _ := e.EncodedJSON()
	if &first[0] != &second[0] {
		t.Error("EncodedJSON re-encoded instead of returning the cached slice")
	}
}

// TestEncodedJSONConcurrentFanout pins the immutability contract under
// -race: many goroutines racing on the first encode all end up sharing
// one published slice, byte-identical everywhere and never re-written.
func TestEncodedJSONConcurrentFanout(t *testing.T) {
	for round := 0; round < 50; round++ {
		e := New("t", map[string]any{"a": int64(round), "b": "payload", "c": 2.5})
		const sinks = 16
		results := make([][]byte, sinks)
		var wg sync.WaitGroup
		for i := 0; i < sinks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				data, err := e.EncodedJSON()
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = data
			}(i)
		}
		wg.Wait()
		for i := 1; i < sinks; i++ {
			if &results[i][0] != &results[0][0] {
				t.Fatal("sinks observed different payload slices (cache written more than once)")
			}
		}
	}
}

func TestEncodedJSONNotInheritedByDerivedEvents(t *testing.T) {
	e := New("t", map[string]any{"k": 1})
	orig, err := e.EncodedJSON()
	if err != nil {
		t.Fatal(err)
	}
	origCopy := string(orig)

	w := e.WithAttr("k", val.Int(2))
	wj, err := w.EncodedJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) == origCopy {
		t.Error("WithAttr copy served the stale parent cache")
	}
	c := e.Clone()
	c.Attrs["k"] = val.Int(3)
	cj, err := c.EncodedJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(cj) == origCopy {
		t.Error("Clone served the stale parent cache")
	}
	if got, _ := e.EncodedJSON(); string(got) != origCopy {
		t.Error("derived events corrupted the original's cache")
	}
}

// TestAppendJSONEventAgainstEncodingJSON cross-checks the hand-rolled
// encoder against encoding/json over awkward inputs: every value kind,
// escapes, control bytes, invalid UTF-8.
func TestAppendJSONEventAgainstEncodingJSON(t *testing.T) {
	e := &Event{
		ID:     7,
		Type:   "we\"ird\\type\n",
		Source: "src\tcontrol\x01",
		Time:   time.Date(2026, 7, 30, 1, 2, 3, 456789, time.UTC),
		Attrs: map[string]val.Value{
			"s":       val.String("line1\nline2 \"quoted\" \\ € 漢字"),
			"invalid": val.String("bad\xffutf8"),
			"i":       val.Int(-42),
			"f":       val.Float(2.5),
			"big":     val.Float(1e21),
			"b":       val.Bool(true),
			"n":       val.Null,
			"by":      val.Bytes([]byte{0, 1, 2, 0xFF}),
			"t":       val.Time(time.Unix(123, 456).UTC()),
			"":        val.String("empty key"),
		},
	}
	data, err := AppendJSONEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("emitted invalid JSON: %s", data)
	}
	got, err := UnmarshalJSONEvent(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != e.ID || got.Type != e.Type || got.Source != e.Source || !got.Time.Equal(e.Time) {
		t.Errorf("envelope mismatch: %+v vs %+v", got, e)
	}
	if v, _ := got.Get("i"); !val.Equal(v, val.Int(-42)) {
		t.Errorf("i = %v", v)
	}
	if v, _ := got.Get("f"); !val.Equal(v, val.Float(2.5)) {
		t.Errorf("f = %v", v)
	}
	if v, _ := got.Get("s"); !val.Equal(v, val.String("line1\nline2 \"quoted\" \\ € 漢字")) {
		t.Errorf("s = %v", v)
	}
	if v, _ := got.Get("by"); !val.Equal(v, val.String("AAEC/w==")) {
		t.Errorf("bytes should round-trip as base64 string, got %v", v)
	}
	// Appending to a non-empty prefix must not corrupt either part.
	withPrefix, err := AppendJSONEvent([]byte("EVT id "), e)
	if err != nil {
		t.Fatal(err)
	}
	if string(withPrefix[:7]) != "EVT id " || !json.Valid(withPrefix[7:]) {
		t.Errorf("prefix append corrupted output: %s", withPrefix)
	}
}

func TestAppendJSONEventDeterministic(t *testing.T) {
	e := New("t", map[string]any{"b": 2, "a": 1, "c": 3, "d": "x"})
	first, err := AppendJSONEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := AppendJSONEvent(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encoding not canonical: %s vs %s", again, first)
		}
	}
}

func TestAppendJSONEventRejectsNaN(t *testing.T) {
	e := New("t", nil)
	e.Attrs = map[string]val.Value{"f": val.Float(math.NaN())}
	if _, err := AppendJSONEvent(nil, e); err == nil {
		t.Error("NaN should not encode")
	}
}

// TestAllocsEncodedJSONSteadyState pins the encode-once contract: after
// the first call the cached payload is returned with zero allocations.
func TestAllocsEncodedJSONSteadyState(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	e := New("trade", map[string]any{"sym": "ACME", "price": 1.5, "qty": 10})
	if _, err := e.EncodedJSON(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.EncodedJSON(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached EncodedJSON allocates %v per call, want 0", allocs)
	}
}
