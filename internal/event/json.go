package event

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"eventdb/internal/val"
)

// JSON interchange for foreign systems (§2.2.b.i.2 of the paper: staging
// areas accept "messages that are created in foreign systems"). The wire
// form is a flat object with reserved envelope keys.

type jsonEvent struct {
	ID     uint64         `json:"id,omitempty"`
	Type   string         `json:"type"`
	Source string         `json:"source,omitempty"`
	Time   string         `json:"time,omitempty"`
	Attrs  map[string]any `json:"attrs"`
}

// MarshalJSONEvent renders the event as JSON. Times are RFC 3339, bytes
// become arrays of numbers (encoding/json default for []byte is base64;
// we keep the default).
func MarshalJSONEvent(e *Event) ([]byte, error) {
	je := jsonEvent{
		ID:     uint64(e.ID),
		Type:   e.Type,
		Source: e.Source,
		Time:   e.Time.UTC().Format(time.RFC3339Nano),
		Attrs:  make(map[string]any, len(e.Attrs)),
	}
	for k, v := range e.Attrs {
		a := v.Any()
		if t, ok := a.(time.Time); ok {
			a = t.Format(time.RFC3339Nano)
		}
		je.Attrs[k] = a
	}
	return json.Marshal(je)
}

// UnmarshalJSONEvent parses a JSON event produced by a foreign system.
// JSON numbers that are integral become int values; others become floats.
// Missing IDs are assigned; missing times default to now.
func UnmarshalJSONEvent(data []byte) (*Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return nil, fmt.Errorf("event: invalid JSON: %w", err)
	}
	if je.Type == "" {
		return nil, fmt.Errorf("event: JSON event missing type")
	}
	e := &Event{
		ID:     ID(je.ID),
		Type:   je.Type,
		Source: je.Source,
		Attrs:  make(map[string]val.Value, len(je.Attrs)),
	}
	if e.ID == 0 {
		e.ID = NextID()
	}
	if je.Time != "" {
		t, err := time.Parse(time.RFC3339Nano, je.Time)
		if err != nil {
			return nil, fmt.Errorf("event: bad time %q: %w", je.Time, err)
		}
		e.Time = t.UTC()
	} else {
		e.Time = time.Now().UTC()
	}
	for k, raw := range je.Attrs {
		v, err := fromJSONValue(raw)
		if err != nil {
			return nil, fmt.Errorf("event: attr %q: %w", k, err)
		}
		e.Attrs[k] = v
	}
	return e, nil
}

func fromJSONValue(raw any) (val.Value, error) {
	switch x := raw.(type) {
	case nil:
		return val.Null, nil
	case bool:
		return val.Bool(x), nil
	case string:
		return val.String(x), nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return val.Int(int64(x)), nil
		}
		return val.Float(x), nil
	default:
		return val.Null, fmt.Errorf("unsupported JSON value %T (nested objects/arrays are not scalar)", raw)
	}
}
