package event

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"

	"eventdb/internal/val"
)

// JSON interchange for foreign systems (§2.2.b.i.2 of the paper: staging
// areas accept "messages that are created in foreign systems"). The wire
// form is a flat object with reserved envelope keys.
//
// Encoding is hand-rolled: the fan-out hot path renders the same JSON
// for every matched sink, so the appender must be cheap — it writes
// directly into a caller-supplied buffer (no intermediate map, no
// reflection) with attribute keys in sorted order so the encoding is
// canonical. Decoding stays on encoding/json: it runs once per foreign
// message, not once per sink.

type jsonEvent struct {
	ID     uint64         `json:"id,omitempty"`
	Type   string         `json:"type"`
	Source string         `json:"source,omitempty"`
	Time   string         `json:"time,omitempty"`
	Attrs  map[string]any `json:"attrs"`
}

// encodeScratch is the pooled per-encode working set: the sorted-key
// slice that makes attribute order canonical without a per-call
// allocation.
type encodeScratch struct {
	keys []string
}

var encodePool = sync.Pool{New: func() any { return new(encodeScratch) }}

// MarshalJSONEvent renders the event as JSON. Times are RFC 3339, bytes
// become base64 strings (the encoding/json convention for []byte).
// Prefer Event.EncodedJSON when the same event reaches several sinks —
// it caches this encoding so the work happens once.
func MarshalJSONEvent(e *Event) ([]byte, error) {
	return AppendJSONEvent(nil, e)
}

// AppendJSONEvent appends the event's JSON wire form to dst and returns
// the extended slice. Attribute keys are emitted in sorted order, so
// the encoding is deterministic for a given event.
func AppendJSONEvent(dst []byte, e *Event) ([]byte, error) {
	dst = append(dst, '{')
	if e.ID != 0 {
		dst = append(dst, `"id":`...)
		dst = strconv.AppendUint(dst, uint64(e.ID), 10)
		dst = append(dst, ',')
	}
	dst = append(dst, `"type":`...)
	dst = appendJSONString(dst, e.Type)
	if e.Source != "" {
		dst = append(dst, `,"source":`...)
		dst = appendJSONString(dst, e.Source)
	}
	dst = append(dst, `,"time":"`...)
	dst = e.Time.UTC().AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","attrs":{`...)

	sc := encodePool.Get().(*encodeScratch)
	keys := sc.keys[:0]
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var err error
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst, err = appendJSONValue(dst, e.Attrs[k])
		if err != nil {
			break
		}
	}
	sc.keys = keys
	encodePool.Put(sc)
	if err != nil {
		return nil, err
	}
	return append(dst, '}', '}'), nil
}

// appendJSONValue renders one attribute value.
func appendJSONValue(dst []byte, v val.Value) ([]byte, error) {
	switch v.Kind() {
	case val.KindNull:
		return append(dst, "null"...), nil
	case val.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(dst, "true"...), nil
		}
		return append(dst, "false"...), nil
	case val.KindInt:
		n, _ := v.AsInt()
		return strconv.AppendInt(dst, n, 10), nil
	case val.KindFloat:
		f, _ := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("event: unsupported JSON float %v", f)
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64), nil
	case val.KindString:
		s, _ := v.AsString()
		return appendJSONString(dst, s), nil
	case val.KindTime:
		t, _ := v.AsTime()
		dst = append(dst, '"')
		dst = t.UTC().AppendFormat(dst, time.RFC3339Nano)
		return append(dst, '"'), nil
	case val.KindBytes:
		b, _ := v.AsBytes()
		n := base64.StdEncoding.EncodedLen(len(b))
		dst = append(dst, '"')
		off := len(dst)
		if cap(dst)-off < n {
			dst = append(dst, make([]byte, n)...)
		} else {
			dst = dst[:off+n]
		}
		base64.StdEncoding.Encode(dst[off:], b)
		return append(dst, '"'), nil
	}
	return nil, fmt.Errorf("event: unsupported JSON value kind %s", v.Kind())
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string. Control
// characters are escaped; invalid UTF-8 bytes become U+FFFD, matching
// encoding/json's coercion.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `�`...)
			i++
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// UnmarshalJSONEvent parses a JSON event produced by a foreign system.
// JSON numbers that are integral become int values; others become floats.
// Missing IDs are assigned; missing times default to now.
func UnmarshalJSONEvent(data []byte) (*Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return nil, fmt.Errorf("event: invalid JSON: %w", err)
	}
	if je.Type == "" {
		return nil, fmt.Errorf("event: JSON event missing type")
	}
	e := &Event{
		ID:     ID(je.ID),
		Type:   je.Type,
		Source: je.Source,
		Attrs:  make(map[string]val.Value, len(je.Attrs)),
	}
	if e.ID == 0 {
		e.ID = NextID()
	}
	if je.Time != "" {
		t, err := time.Parse(time.RFC3339Nano, je.Time)
		if err != nil {
			return nil, fmt.Errorf("event: bad time %q: %w", je.Time, err)
		}
		e.Time = t.UTC()
	} else {
		e.Time = time.Now().UTC()
	}
	for k, raw := range je.Attrs {
		v, err := fromJSONValue(raw)
		if err != nil {
			return nil, fmt.Errorf("event: attr %q: %w", k, err)
		}
		e.Attrs[k] = v
	}
	return e, nil
}

func fromJSONValue(raw any) (val.Value, error) {
	switch x := raw.(type) {
	case nil:
		return val.Null, nil
	case bool:
		return val.Bool(x), nil
	case string:
		return val.String(x), nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return val.Int(int64(x)), nil
		}
		return val.Float(x), nil
	default:
		return val.Null, fmt.Errorf("unsupported JSON value %T (nested objects/arrays are not scalar)", raw)
	}
}
