// Package event defines the event model: a typed, timestamped record of
// something that happened, plus schemas for validating event streams and
// batches for efficient transport between pipeline stages.
//
// Events are the lingua franca of the engine. Capture components
// (triggers, journal mining, query differs) produce them, staging areas
// store them, and the evaluation layer (rules, pub/sub, CEP, continuous
// queries) consumes them.
package event

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"eventdb/internal/val"
)

// ID is a unique event identifier assigned at creation.
type ID uint64

var idCounter atomic.Uint64

// NextID returns a process-unique monotonically increasing event ID.
func NextID() ID { return ID(idCounter.Add(1)) }

// Event is an immutable record of an occurrence. Type names the event
// class (e.g. "trade", "meter.reading"); Source identifies the producer;
// Time is the occurrence time (event time, not processing time); Attrs
// carries the typed payload.
//
// Events are shared by pointer across every evaluation and delivery
// layer, so the struct also carries the encode-once cache used by the
// fan-out hot path (see EncodedJSON). The cache makes Event
// non-copyable; derive modified events with WithAttr or Clone instead
// of copying the struct.
type Event struct {
	ID     ID
	Type   string
	Source string
	Time   time.Time
	Attrs  map[string]val.Value

	// enc atomically publishes the cached JSON wire form. Nil until the
	// first EncodedJSON call; never reset (events are immutable once
	// shared — WithAttr and Clone return fresh events with empty
	// caches).
	enc atomic.Pointer[[]byte]
}

// EncodedJSON returns the event's JSON wire form (see
// MarshalJSONEvent), marshaling at most once per event: the first
// encoding is atomically published and every later call — from any
// goroutine, for any sink — returns the same immutable byte slice, so
// an event fanned out to M subscribers across any number of
// connections is encoded once, not M times. Callers must treat the
// returned slice as read-only.
func (e *Event) EncodedJSON() ([]byte, error) {
	if p := e.enc.Load(); p != nil {
		return *p, nil
	}
	data, err := AppendJSONEvent(nil, e)
	if err != nil {
		return nil, err
	}
	if e.enc.CompareAndSwap(nil, &data) {
		return data, nil
	}
	// Lost the publish race: hand back the winner so every caller
	// shares one slice.
	return *e.enc.Load(), nil
}

// New constructs an event of the given type with a fresh ID and the
// current UTC time. Attribute values are converted with val.FromAny;
// unsupported types panic, so use NewChecked for untrusted input.
func New(typ string, attrs map[string]any) *Event {
	ev, err := NewChecked(typ, attrs)
	if err != nil {
		panic(err)
	}
	return ev
}

// NewChecked is New returning conversion errors instead of panicking.
func NewChecked(typ string, attrs map[string]any) (*Event, error) {
	converted := make(map[string]val.Value, len(attrs))
	for k, v := range attrs {
		cv, err := val.FromAny(v)
		if err != nil {
			return nil, fmt.Errorf("event: attribute %q: %w", k, err)
		}
		converted[k] = cv
	}
	return &Event{
		ID:    NextID(),
		Type:  typ,
		Time:  time.Now().UTC(),
		Attrs: converted,
	}, nil
}

// Get returns the named attribute. The pseudo-attributes "$type",
// "$source", "$id" and "$time" expose the envelope fields to expressions.
func (e *Event) Get(name string) (val.Value, bool) {
	switch name {
	case "$type":
		return val.String(e.Type), true
	case "$source":
		return val.String(e.Source), true
	case "$id":
		return val.Int(int64(e.ID)), true
	case "$time":
		return val.Time(e.Time), true
	}
	v, ok := e.Attrs[name]
	return v, ok
}

// WithAttr returns a shallow copy of the event with one attribute
// replaced. The original is not modified. The copy starts with an
// empty encode cache — sharing the original's would serve stale JSON
// for the changed attribute.
func (e *Event) WithAttr(name string, v val.Value) *Event {
	cp := e.Clone()
	cp.Attrs[name] = v
	return cp
}

// Clone returns a deep copy of the event (attribute map is copied; the
// immutable values are shared). The copy's encode cache starts empty.
func (e *Event) Clone() *Event {
	cp := &Event{ID: e.ID, Type: e.Type, Source: e.Source, Time: e.Time,
		Attrs: make(map[string]val.Value, len(e.Attrs)+1)}
	for k, v := range e.Attrs {
		cp.Attrs[k] = v
	}
	return cp
}

// String renders the event compactly for logs and tests, with attributes
// in sorted order for determinism.
func (e *Event) String() string {
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("%s#%d{", e.Type, e.ID)
	for i, k := range keys {
		if i > 0 {
			s += ", "
		}
		s += k + "=" + e.Attrs[k].String()
	}
	return s + "}"
}

// Field describes one attribute in an event schema.
type Field struct {
	Name     string
	Kind     val.Kind
	Required bool
}

// Schema validates that events of a given type carry the declared
// attributes. Undeclared attributes are permitted (events are
// open-content); declared attributes must match kinds, and required
// attributes must be present.
type Schema struct {
	Type   string
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema for the given event type.
func NewSchema(typ string, fields ...Field) (*Schema, error) {
	s := &Schema{Type: typ, Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("event: schema %q: empty field name", typ)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("event: schema %q: duplicate field %q", typ, f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// Validate checks ev against the schema.
func (s *Schema) Validate(ev *Event) error {
	if ev.Type != s.Type {
		return fmt.Errorf("event: schema %q: wrong event type %q", s.Type, ev.Type)
	}
	for _, f := range s.Fields {
		v, ok := ev.Attrs[f.Name]
		if !ok {
			if f.Required {
				return fmt.Errorf("event: schema %q: missing required attribute %q", s.Type, f.Name)
			}
			continue
		}
		if v.IsNull() {
			if f.Required {
				return fmt.Errorf("event: schema %q: required attribute %q is null", s.Type, f.Name)
			}
			continue
		}
		if v.Kind() != f.Kind && !(v.IsNumeric() && (f.Kind == val.KindInt || f.Kind == val.KindFloat)) {
			return fmt.Errorf("event: schema %q: attribute %q has kind %s, want %s",
				s.Type, f.Name, v.Kind(), f.Kind)
		}
	}
	return nil
}

// Encode serializes the event to the engine's binary format.
func Encode(dst []byte, e *Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.ID))
	dst = appendString(dst, e.Type)
	dst = appendString(dst, e.Source)
	dst = binary.AppendVarint(dst, e.Time.UnixNano())
	dst = binary.AppendUvarint(dst, uint64(len(e.Attrs)))
	// Deterministic order so encoding is canonical (audit hashing).
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = val.AppendBinary(dst, e.Attrs[k])
	}
	return dst
}

// Decode deserializes one event from buf, returning it and the bytes
// consumed.
func Decode(buf []byte) (*Event, int, error) {
	pos := 0
	id, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: bad id")
	}
	pos += n
	typ, n, err := decodeString(buf[pos:])
	if err != nil {
		return nil, 0, fmt.Errorf("event: type: %w", err)
	}
	pos += n
	src, n, err := decodeString(buf[pos:])
	if err != nil {
		return nil, 0, fmt.Errorf("event: source: %w", err)
	}
	pos += n
	ts, n := binary.Varint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: bad time")
	}
	pos += n
	cnt, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("event: bad attr count")
	}
	pos += n
	if cnt > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("event: attr count %d exceeds buffer", cnt)
	}
	attrs := make(map[string]val.Value, cnt)
	for i := uint64(0); i < cnt; i++ {
		k, n, err := decodeString(buf[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("event: attr key: %w", err)
		}
		pos += n
		v, n, err := val.DecodeBinary(buf[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("event: attr %q: %w", k, err)
		}
		pos += n
		attrs[k] = v
	}
	return &Event{
		ID:     ID(id),
		Type:   typ,
		Source: src,
		Time:   time.Unix(0, ts).UTC(),
		Attrs:  attrs,
	}, pos, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(buf []byte) (string, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return "", 0, fmt.Errorf("bad length")
	}
	if uint64(len(buf)-sz) < n {
		return "", 0, fmt.Errorf("short string: want %d have %d", n, len(buf)-sz)
	}
	return string(buf[sz : sz+int(n)]), sz + int(n), nil
}
