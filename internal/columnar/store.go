package columnar

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"eventdb/internal/storage"
	"eventdb/internal/vfs"
	"eventdb/internal/wal"
)

// Config tunes a Manager.
type Config struct {
	// SealRows is the pending-row threshold at which the background
	// sealer drains a table's row batch into a segment. Defaults to
	// 8192. Seals always cut on whole-commit boundaries, so a segment
	// may slightly exceed this.
	SealRows int
	// SealInterval is the sealer's wake-up cadence. Defaults to 200ms.
	SealInterval time.Duration
	// Dir, when non-empty, persists sealed segments as files so a
	// restart reloads them instead of re-mining the WAL. Segments that
	// fail validation (partial write, CRC mismatch, schema drift) are
	// discarded and rebuilt from the WAL.
	Dir string
	// FS is the filesystem segment files are written through. Nil means
	// the real one. Segment files are a rebuildable cache of the WAL,
	// so an injected fault here surfaces as a persist error, not as
	// engine degradation.
	FS vfs.FS
}

func (c Config) withDefaults() Config {
	if c.SealRows <= 0 {
		c.SealRows = 8192
	}
	if c.SealRows < 64 {
		c.SealRows = 64
	}
	if c.SealInterval <= 0 {
		c.SealInterval = 200 * time.Millisecond
	}
	c.FS = vfs.Default(c.FS)
	return c
}

// registry maps a *storage.DB to its attached Manager so that layers
// that only hold a DB handle (query planner, journal miner) can find
// the columnar history without threading a manager through every call
// site.
var registry sync.Map // *storage.DB → *Manager

// Of returns the Manager attached to db, or nil.
func Of(db *storage.DB) *Manager {
	if m, ok := registry.Load(db); ok {
		return m.(*Manager)
	}
	return nil
}

// Manager owns the columnar history of one database: a TableStore per
// table, fed by the commit-hook stream, drained by a background
// sealer.
type Manager struct {
	db      *storage.DB
	cfg     Config
	durable bool

	mu     sync.RWMutex
	stores map[string]*TableStore

	// Bootstrap buffering: commits that land while Attach is replaying
	// the WAL are buffered and drained afterwards (with LSN/row dedup),
	// so the hook can be registered before the replay without losing
	// or double-counting commits.
	bootMu  sync.Mutex
	booting bool
	bootBuf []*storage.CommitInfo

	errMu   sync.Mutex
	lastErr error

	removeHook func()
	kick       chan struct{}
	done       chan struct{}
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// pendingRow is one committed insert not yet sealed.
type pendingRow struct {
	id   storage.RowID
	lsn  uint64
	grp  uint64 // seal-group key: LSN when durable, commit seq otherwise
	row  storage.Row
	dead bool // superseded by a later update/delete
	gone bool // superseded specifically by a delete
}

// TableStore holds one table's columnar history: sealed segments plus
// the pending tail.
type TableStore struct {
	table  string
	schema *storage.Schema

	// sealMu serializes seal operations (background sealer vs forced
	// Compact); mu guards all mutable state below.
	sealMu sync.Mutex
	mu     sync.RWMutex

	segs    []*Segment
	pending []pendingRow
	// modified marks sealed rows whose current version lives in the
	// row store (they were updated after sealing), so scans read them
	// from the table instead of the segment.
	modified     map[storage.RowID]bool
	maxSealedID  storage.RowID
	maxSealedLSN uint64
	maxGrp       uint64 // dedup guard: highest observed seal-group key
	sealedTotal  uint64
}

// TableStats is the COMPACT/stats surface for one table.
type TableStats struct {
	Table       string `json:"table"`
	Segments    int    `json:"segments"`
	SealedRows  int    `json:"sealed_rows"`
	DeadRows    int    `json:"dead_rows"`
	PendingRows int    `json:"pending_rows"`
	MemBytes    int    `json:"bytes"`
	LastLSN     uint64 `json:"last_lsn"`
}

// Attach creates a Manager over db and registers it in the package
// registry. For durable databases the WAL is replayed (and persisted
// segments reloaded) so history predating the attach is covered; for
// volatile databases current table contents are snapshotted. Attach
// should run before the database takes concurrent write traffic —
// commits racing the bootstrap are handled, but tables created after
// Attach by a racing writer start tracking from their first observed
// commit.
func Attach(db *storage.DB, cfg Config) (*Manager, error) {
	m := &Manager{
		db:      db,
		cfg:     cfg.withDefaults(),
		durable: db.Durable(),
		stores:  make(map[string]*TableStore),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		booting: true,
	}
	if _, loaded := registry.LoadOrStore(db, m); loaded {
		return nil, fmt.Errorf("columnar: database already has an attached manager")
	}
	m.removeHook = db.OnCommit(m.onCommit)

	if m.durable {
		if m.cfg.Dir != "" {
			if err := m.loadSegments(); err != nil {
				// Unreadable segment state is never fatal: drop it and
				// rebuild from the WAL.
				m.setErr(err)
			}
		}
		if err := m.bootstrapWAL(); err != nil {
			m.detach()
			return nil, err
		}
	} else {
		m.bootstrapTables()
	}

	// Drain commits buffered during bootstrap, then go live.
	m.bootMu.Lock()
	for _, ci := range m.bootBuf {
		m.observe(ci)
	}
	m.bootBuf = nil
	m.booting = false
	m.bootMu.Unlock()

	m.wg.Add(1)
	go m.sealLoop()
	return m, nil
}

func (m *Manager) detach() {
	m.removeHook()
	registry.CompareAndDelete(m.db, m)
}

// Close stops the sealer and detaches from the database. Sealed
// in-memory state is dropped; durable databases rebuild it on the
// next Attach from segment files and the WAL.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
		m.detach()
	})
}

// Err returns the last background error (segment persistence or
// reload), if any. Background errors never stop the engine: the WAL
// remains the source of truth.
func (m *Manager) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.lastErr
}

func (m *Manager) setErr(err error) {
	if err == nil {
		return
	}
	m.errMu.Lock()
	m.lastErr = err
	m.errMu.Unlock()
}

// Table returns the store for a table, or nil if the table has no
// observed history.
func (m *Manager) Table(name string) *TableStore {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stores[name]
}

func (m *Manager) store(name string) *TableStore {
	m.mu.RLock()
	st := m.stores[name]
	m.mu.RUnlock()
	if st != nil {
		return st
	}
	tbl, ok := m.db.Table(name)
	if !ok {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st = m.stores[name]; st != nil {
		return st
	}
	st = &TableStore{
		table:    name,
		schema:   tbl.Schema(),
		modified: make(map[storage.RowID]bool),
	}
	m.stores[name] = st
	return st
}

func (m *Manager) allStores() []*TableStore {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*TableStore, 0, len(m.stores))
	for _, st := range m.stores {
		out = append(out, st)
	}
	return out
}

// onCommit is the registered commit hook.
func (m *Manager) onCommit(ci *storage.CommitInfo) {
	m.bootMu.Lock()
	if m.booting {
		m.bootBuf = append(m.bootBuf, ci)
		m.bootMu.Unlock()
		return
	}
	m.bootMu.Unlock()
	m.observe(ci)
}

// observe folds one committed transaction into the per-table stores.
// Each table's slice of the commit is applied in a single critical
// section: a concurrent seal must see either none or all of a commit's
// inserts, or the seal cut could split the commit.
func (m *Manager) observe(ci *storage.CommitInfo) {
	grp := ci.Seq
	if m.durable {
		grp = ci.LSN
	}
	byTable := make(map[string][]int)
	var tables []string
	for i := range ci.Changes {
		t := ci.Changes[i].Table
		if _, seen := byTable[t]; !seen {
			tables = append(tables, t)
		}
		byTable[t] = append(byTable[t], i)
	}
	var wantKick bool
	for _, table := range tables {
		st := m.store(table)
		if st == nil {
			continue
		}
		st.mu.Lock()
		for _, i := range byTable[table] {
			st.applyLocked(&ci.Changes[i], ci.LSN, grp)
		}
		if len(st.pending) >= m.cfg.SealRows {
			wantKick = true
		}
		st.mu.Unlock()
	}
	if wantKick {
		select {
		case m.kick <- struct{}{}:
		default:
		}
	}
}

// applyLocked folds one change into the store; returns true if a
// pending row was appended. Caller holds mu.
func (st *TableStore) applyLocked(c *storage.Change, lsn, grp uint64) bool {
	switch c.Kind {
	case storage.Insert:
		// Dedup against bootstrap: the WAL replay and the buffered
		// hook stream can both deliver a commit; group key and row ID
		// are each monotonic, so replays are cheap to recognize. The
		// group check must be strict — a commit's inserts all share one
		// group key; the row-ID checks below handle the equal case.
		if grp != 0 && grp < st.maxGrp {
			return false
		}
		if id := c.ID; id <= st.maxSealedID ||
			(len(st.pending) > 0 && id <= st.pending[len(st.pending)-1].id) {
			return false
		}
		st.pending = append(st.pending, pendingRow{id: c.ID, lsn: lsn, grp: grp, row: c.New})
		if grp > st.maxGrp {
			st.maxGrp = grp
		}
		return true
	case storage.Update:
		// Re-observing an update (bootstrap replay overlap) is
		// harmless: dead-marking is idempotent.
		st.markDeadLocked(c.ID, false)
		if grp > st.maxGrp {
			st.maxGrp = grp
		}
	case storage.Delete:
		st.markDeadLocked(c.ID, true)
		if grp > st.maxGrp {
			st.maxGrp = grp
		}
	}
	return false
}

// markDeadLocked marks a row (wherever it lives) as superseded.
// Caller holds mu.
func (st *TableStore) markDeadLocked(id storage.RowID, gone bool) {
	if i := st.findPendingLocked(id); i >= 0 {
		st.pending[i].dead = true
		if gone {
			st.pending[i].gone = true
		}
		return
	}
	for _, seg := range st.segs {
		first, last, _, _ := seg.Bounds()
		if id < first || id > last {
			continue
		}
		if pos := seg.find(id); pos >= 0 {
			seg.markDead(pos)
			if gone {
				delete(st.modified, id)
			} else {
				st.modified[id] = true
			}
			return
		}
	}
}

// findPendingLocked binary-searches pending (sorted by id).
func (st *TableStore) findPendingLocked(id storage.RowID) int {
	lo, hi := 0, len(st.pending)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.pending[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.pending) && st.pending[lo].id == id {
		return lo
	}
	return -1
}

// ---- bootstrap ----

// bootstrapWAL replays the full WAL into the stores. Inserts already
// covered by reloaded segment files are skipped by LSN; updates and
// deletes always re-apply their dead marks (segment files do not
// persist dead bits).
func (m *Manager) bootstrapWAL() error {
	log := m.db.WAL()
	if log == nil {
		return nil
	}
	return log.Replay(0, func(r wal.Record) error {
		changes, ok, err := storage.DecodeCommitRecord(r)
		if err != nil {
			return fmt.Errorf("columnar: bootstrap lsn=%d: %w", r.LSN, err)
		}
		if !ok {
			return nil
		}
		for i := range changes {
			c := &changes[i]
			st := m.store(c.Table)
			if st == nil {
				continue
			}
			st.mu.Lock()
			switch c.Kind {
			case storage.Insert:
				if r.LSN > st.maxSealedLSN {
					st.pending = append(st.pending, pendingRow{id: c.ID, lsn: r.LSN, grp: r.LSN, row: c.New})
				}
			case storage.Update:
				st.markDeadLocked(c.ID, false)
			case storage.Delete:
				st.markDeadLocked(c.ID, true)
			}
			if r.LSN > st.maxGrp {
				st.maxGrp = r.LSN
			}
			st.mu.Unlock()
		}
		return nil
	})
}

// bootstrapTables snapshots current table contents of a volatile
// database so history predating the attach is scannable.
func (m *Manager) bootstrapTables() {
	for _, name := range m.db.Tables() {
		tbl, ok := m.db.Table(name)
		if !ok {
			continue
		}
		ids, rows := tbl.ScanRows()
		if len(ids) == 0 {
			continue
		}
		idx := make([]int, len(ids))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
		st := m.store(name)
		if st == nil {
			continue
		}
		st.mu.Lock()
		for _, i := range idx {
			st.pending = append(st.pending, pendingRow{id: ids[i], row: rows[i]})
		}
		st.mu.Unlock()
	}
}

// ---- sealing ----

func (m *Manager) sealLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SealInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
		case <-m.kick:
		}
		for _, st := range m.allStores() {
			for st.pendingLen() >= m.cfg.SealRows {
				if !m.sealOne(st, m.cfg.SealRows) {
					break
				}
			}
		}
	}
}

func (st *TableStore) pendingLen() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.pending)
}

// sealCut returns how many pending rows to seal: up to target, then
// extended so a commit's inserts are never split across a seal
// boundary (journal mining resumes WAL replay at maxSealedLSN+1, so a
// split commit would double- or under-deliver).
func sealCut(pending []pendingRow, target int) int {
	if len(pending) == 0 {
		return 0
	}
	cut := target
	if cut >= len(pending) {
		return len(pending)
	}
	for cut < len(pending) && pending[cut].grp == pending[cut-1].grp {
		cut++
	}
	return cut
}

// sealOne drains up to target pending rows (whole commits) into one
// segment. The encode happens outside the store lock; dead marks that
// land during the build are re-applied at install.
func (m *Manager) sealOne(st *TableStore, target int) bool {
	st.sealMu.Lock()
	defer st.sealMu.Unlock()

	st.mu.Lock()
	cut := sealCut(st.pending, target)
	if cut == 0 {
		st.mu.Unlock()
		return false
	}
	ids := make([]storage.RowID, cut)
	lsns := make([]uint64, cut)
	rows := make([]storage.Row, cut)
	for i := 0; i < cut; i++ {
		p := &st.pending[i]
		ids[i], lsns[i], rows[i] = p.id, p.lsn, p.row
	}
	schema := st.schema
	st.mu.Unlock()

	seg, err := buildSegment(st.table, schema, ids, lsns, rows)
	if err != nil {
		m.setErr(err)
		return false
	}

	st.mu.Lock()
	for i := 0; i < cut; i++ {
		p := &st.pending[i]
		if p.dead {
			seg.markDead(i)
			if !p.gone {
				st.modified[p.id] = true
			}
		}
	}
	st.segs = append(st.segs, seg)
	st.maxSealedID = seg.ids[seg.rows-1]
	if seg.lastLSN > st.maxSealedLSN {
		st.maxSealedLSN = seg.lastLSN
	}
	st.pending = append(st.pending[:0:0], st.pending[cut:]...)
	st.sealedTotal++
	st.mu.Unlock()

	if m.durable && m.cfg.Dir != "" {
		if err := m.persistSegment(seg); err != nil {
			m.setErr(err)
		}
	}
	return true
}

// Compact force-seals every pending row of a table (all tables when
// name is empty) and returns the resulting stats.
func (m *Manager) Compact(name string) ([]TableStats, error) {
	var stores []*TableStore
	if name == "" {
		stores = m.allStores()
	} else if st := m.Table(name); st != nil {
		stores = []*TableStore{st}
	} else {
		return nil, fmt.Errorf("columnar: no history for table %q", name)
	}
	for _, st := range stores {
		for st.pendingLen() > 0 {
			if !m.sealOne(st, 1<<30) {
				break
			}
		}
	}
	out := make([]TableStats, 0, len(stores))
	for _, st := range stores {
		out = append(out, st.Stats())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Table < out[b].Table })
	return out, nil
}

// Stats returns a snapshot of every table's segment stats, sorted by
// table name.
func (m *Manager) Stats() []TableStats {
	stores := m.allStores()
	out := make([]TableStats, 0, len(stores))
	for _, st := range stores {
		out = append(out, st.Stats())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Table < out[b].Table })
	return out
}

// Stats summarizes the store.
func (st *TableStore) Stats() TableStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := TableStats{
		Table:       st.table,
		Segments:    len(st.segs),
		PendingRows: len(st.pending),
		LastLSN:     st.maxSealedLSN,
	}
	for _, seg := range st.segs {
		s.SealedRows += seg.rows
		s.DeadRows += seg.deadCount
		s.MemBytes += seg.bytes
	}
	return s
}

// ---- scan snapshots ----

// SegView is one segment plus the dead bitmap as of snapshot time.
type SegView struct {
	Seg  *Segment
	dead []uint64
}

// IsDead reports whether segment row i was superseded as of the
// snapshot.
func (sv SegView) IsDead(i int) bool { return deadBit(sv.dead, i) }

// HasDead reports whether any row in this segment was dead as of the
// snapshot, letting scans skip the per-row dead check entirely.
func (sv SegView) HasDead() bool { return sv.dead != nil }

// TailRow is one row whose current version lived in the row store as
// of the snapshot: a pending (never-sealed) insert, or a sealed row
// superseded by an update. Row is the insert-time value for live
// pending rows; nil means the current version must be fetched from
// the table (it was rewritten after this copy was taken).
type TailRow struct {
	ID  storage.RowID
	Row storage.Row
}

// Snapshot is a point-in-time view of a table's sealed history for
// one scan: the segment list, each segment's dead bitmap, and the
// row-store tail.
type Snapshot struct {
	Schema *storage.Schema
	Segs   []SegView
	// MaxSealedID is the highest sealed RowID: rows above it live only
	// in the row store.
	MaxSealedID storage.RowID
	// Tail enumerates every row the row store must be consulted for,
	// so scans touch O(tail) rows instead of iterating the whole table.
	Tail     []TailRow
	modified map[storage.RowID]bool
}

// InRowStore reports whether the current version of a row must be
// read from the row store rather than a segment: either it was never
// sealed, or it was updated after sealing.
func (s *Snapshot) InRowStore(id storage.RowID) bool {
	return id > s.MaxSealedID || s.modified[id]
}

// SealedRows returns the total sealed row count in the snapshot.
func (s *Snapshot) SealedRows() int {
	n := 0
	for _, sv := range s.Segs {
		n += sv.Seg.rows
	}
	return n
}

// Snapshot captures the store's sealed state for one consistent scan,
// or nil if nothing is sealed yet. Dead bitmaps are copied (they are
// the one mutable part of a segment); segments themselves are shared
// immutably.
func (st *TableStore) Snapshot() *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.segs) == 0 {
		return nil
	}
	snap := &Snapshot{
		Schema:      st.schema,
		Segs:        make([]SegView, len(st.segs)),
		MaxSealedID: st.maxSealedID,
		modified:    make(map[storage.RowID]bool, len(st.modified)),
	}
	for i, seg := range st.segs {
		sv := SegView{Seg: seg}
		if seg.deadCount > 0 {
			sv.dead = append([]uint64(nil), seg.dead...)
		}
		snap.Segs[i] = sv
	}
	snap.Tail = make([]TailRow, 0, len(st.pending)+len(st.modified))
	for i := range st.pending {
		p := &st.pending[i]
		if p.gone {
			continue
		}
		tr := TailRow{ID: p.id}
		if !p.dead {
			tr.Row = p.row // rows are immutable; safe to share
		}
		snap.Tail = append(snap.Tail, tr)
	}
	for id := range st.modified {
		snap.modified[id] = true
		snap.Tail = append(snap.Tail, TailRow{ID: id})
	}
	return snap
}

// ---- history mining ----

// MineInserts replays the sealed insert history of one table in LSN
// order, including rows later updated or deleted (the insert happened
// regardless of the row's later fate — exactly what REPLAY wants).
// It returns the LSN after the sealed prefix, from which the caller
// should continue with a WAL replay; fromLSN is returned unchanged
// when segments cover nothing at or after it.
func (m *Manager) MineInserts(table string, fromLSN uint64, fn func(lsn uint64, c *storage.Change) error) (nextLSN uint64, err error) {
	st := m.Table(table)
	if st == nil {
		return fromLSN, nil
	}
	st.mu.RLock()
	segs := append([]*Segment(nil), st.segs...)
	maxSealedLSN := st.maxSealedLSN
	st.mu.RUnlock()
	if maxSealedLSN == 0 || maxSealedLSN < fromLSN {
		return fromLSN, nil
	}
	width := len(st.schema.Columns)
	for _, seg := range segs {
		if seg.lastLSN < fromLSN {
			continue
		}
		r := seg.NewReader(nil)
		var b Batch
		for r.Next(&b) {
			for i := 0; i < b.Len; i++ {
				lsn := seg.lsns[b.Start+i]
				if lsn < fromLSN {
					continue
				}
				row := make(storage.Row, width)
				b.MaterializeRow(row, i)
				c := storage.Change{Table: table, Kind: storage.Insert, ID: seg.ids[b.Start+i], New: row}
				if err := fn(lsn, &c); err != nil {
					return 0, err
				}
			}
		}
	}
	return maxSealedLSN + 1, nil
}
