package columnar

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"eventdb/internal/expr"
	"eventdb/internal/raceflag"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// eventsSchema covers every column kind, including a nullable column.
func eventsSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s, err := storage.NewSchema("events", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "ts", Kind: val.KindTime},
		{Name: "sym", Kind: val.KindString},
		{Name: "price", Kind: val.KindFloat},
		{Name: "qty", Kind: val.KindInt},
		{Name: "flag", Kind: val.KindBool},
		{Name: "blob", Kind: val.KindBytes},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var testSyms = []string{"ACME", "BETA", "GAMA", "DELT", "EPSI"}

// randEvent builds row i with deterministic pseudo-random values;
// roughly one in eight values per nullable column is null.
func randEvent(rng *rand.Rand, i int) map[string]val.Value {
	m := map[string]val.Value{
		"id": val.Int(int64(i)),
		"ts": val.Time(time.Unix(1700000000+int64(i), 0).UTC()),
	}
	if rng.Intn(8) != 0 {
		m["sym"] = val.String(testSyms[rng.Intn(len(testSyms))])
	}
	if rng.Intn(8) != 0 {
		m["price"] = val.Float(float64(rng.Intn(10000)) / 100)
	}
	if rng.Intn(8) != 0 {
		m["qty"] = val.Int(int64(rng.Intn(1000) - 500))
	}
	if rng.Intn(8) != 0 {
		m["flag"] = val.Bool(rng.Intn(2) == 0)
	}
	if rng.Intn(8) != 0 {
		m["blob"] = val.Bytes([]byte{byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	return m
}

func fillEvents(t *testing.T, db *storage.DB, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if _, err := db.Insert("events", randEvent(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
}

func openVolatile(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable(eventsSchema(t)); err != nil {
		t.Fatal(err)
	}
	return db
}

func attach(t *testing.T, db *storage.DB, cfg Config) *Manager {
	t.Helper()
	m, err := Attach(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// segRows re-materializes every live sealed row of a table, keyed by
// RowID.
func segRows(t *testing.T, st *TableStore) map[storage.RowID]storage.Row {
	t.Helper()
	out := make(map[storage.RowID]storage.Row)
	snap := st.Snapshot()
	if snap == nil {
		return out
	}
	for _, sv := range snap.Segs {
		r := sv.Seg.NewReader(nil)
		var b Batch
		for r.Next(&b) {
			for i := 0; i < b.Len; i++ {
				if sv.IsDead(b.Start + i) {
					continue
				}
				row := make(storage.Row, len(snap.Schema.Columns))
				b.MaterializeRow(row, i)
				out[sv.Seg.RowID(b.Start+i)] = row
			}
		}
	}
	return out
}

func rowsEqual(a, b storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !val.Equal(a[i], b[i]) && !(a[i].IsNull() && b[i].IsNull()) {
			return false
		}
	}
	return true
}

func TestSealRoundtripAllKinds(t *testing.T) {
	db := openVolatile(t)
	fillEvents(t, db, 500, 1)
	m := attach(t, db, Config{SealRows: 64})
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	st := m.Table("events")
	if st == nil {
		t.Fatal("no table store")
	}
	got := segRows(t, st)
	tbl, _ := db.Table("events")
	ids, rows := tbl.ScanRows()
	if len(got) != len(ids) {
		t.Fatalf("sealed %d rows, table has %d", len(got), len(ids))
	}
	for i, id := range ids {
		sr, ok := got[id]
		if !ok {
			t.Fatalf("row %d missing from segments", id)
		}
		if !rowsEqual(sr, rows[i]) {
			t.Fatalf("row %d mismatch:\nseg %v\ntbl %v", id, sr, rows[i])
		}
	}
	if st.Snapshot().SealedRows() != 500 {
		t.Fatalf("sealed rows = %d", st.Snapshot().SealedRows())
	}
}

func TestZoneMaps(t *testing.T) {
	schema := eventsSchema(t)
	rows := []storage.Row{
		{val.Int(1), val.Null, val.String("b"), val.Float(2.5), val.Int(-3), val.Bool(true), val.Null},
		{val.Int(2), val.Null, val.Null, val.Float(7.25), val.Int(9), val.Bool(false), val.Null},
		{val.Int(3), val.Null, val.String("a"), val.Null, val.Int(4), val.Null, val.Null},
	}
	seg, err := buildSegment("events", schema, []storage.RowID{1, 2, 3}, []uint64{1, 2, 3}, rows)
	if err != nil {
		t.Fatal(err)
	}
	z := seg.Zone(schema.ColIndex("qty"))
	if !z.OK || !val.Equal(z.Min, val.Int(-3)) || !val.Equal(z.Max, val.Int(9)) {
		t.Fatalf("qty zone = %+v", z)
	}
	z = seg.Zone(schema.ColIndex("sym"))
	if !z.OK || !val.Equal(z.Min, val.String("a")) || !val.Equal(z.Max, val.String("b")) || z.Nulls != 1 {
		t.Fatalf("sym zone = %+v", z)
	}
	z = seg.Zone(schema.ColIndex("ts"))
	if z.OK || z.Nulls != 3 {
		t.Fatalf("all-null ts zone = %+v", z)
	}

	// Zone pruning: a conjunct that cannot hold in this segment
	// excludes it; ones that can hold keep it.
	probe := func(src string) bool {
		p, err := expr.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		return seg.CanMatch(p.EqPreds, p.RangePreds)
	}
	if probe("qty > 9") {
		t.Error("qty > 9 should prune")
	}
	if !probe("qty >= 9") {
		t.Error("qty >= 9 should not prune")
	}
	if probe("sym = 'zzz'") {
		t.Error("sym = 'zzz' should prune")
	}
	if !probe("sym = 'a'") {
		t.Error("sym = 'a' should not prune")
	}
	if probe("ts = 1") {
		t.Error("value predicate on all-null column should prune")
	}
	if probe("qty BETWEEN 100 AND 200") {
		t.Error("out-of-range BETWEEN should prune")
	}
}

func TestNaNPoisonsZone(t *testing.T) {
	schema := eventsSchema(t)
	rows := []storage.Row{
		{val.Int(1), val.Null, val.Null, val.Float(mathNaN()), val.Null, val.Null, val.Null},
		{val.Int(2), val.Null, val.Null, val.Float(1), val.Null, val.Null, val.Null},
	}
	seg, err := buildSegment("events", schema, []storage.RowID{1, 2}, []uint64{1, 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Zone(schema.ColIndex("price")).OK {
		t.Fatal("NaN must invalidate the zone")
	}
	p, err := expr.Compile("price > 100")
	if err != nil {
		t.Fatal(err)
	}
	if !seg.CanMatch(p.EqPreds, p.RangePreds) {
		t.Fatal("broken zone must never prune")
	}
}

func mathNaN() float64 {
	var z float64
	return z / z
}

// filterExprs is the differential corpus: everything the kernel
// compiler claims to support, plus shapes that must fall back.
var filterExprs = []struct {
	src     string
	compile bool // CompileFilter must accept (true) or reject (false)
}{
	{"qty > 100", true},
	{"qty >= -500", true},
	{"qty < 0", true},
	{"qty <= 0", true},
	{"qty = 42", true},
	{"qty != 42", true},
	{"price > 50", true},
	{"price <= 12.5", true},
	{"qty > 12.5", true},
	{"price = 31.41", true},
	{"sym = 'ACME'", true},
	{"sym != 'ACME'", true},
	{"sym > 'BETA'", true},
	{"sym <= 'DELT'", true},
	{"flag", true},
	{"NOT flag", true},
	{"flag = true", true},
	{"sym IS NULL", true},
	{"price IS NOT NULL", true},
	{"qty BETWEEN -100 AND 100", true},
	{"qty NOT BETWEEN 0 AND 250", true},
	{"sym IN ('ACME', 'GAMA')", true},
	{"sym NOT IN ('ACME', 'BETA', 'nosuch')", true},
	{"qty IN (1, 2, 3, 250)", true},
	{"qty IN (1, 2.0, 3)", true},
	{"sym = 'ACME' AND qty > 0", true},
	{"sym = 'ACME' OR price > 90", true},
	{"NOT (sym = 'ACME' AND qty > 0)", true},
	{"qty > 0 AND price > 0 AND flag", true},
	{"missing = 1", true},     // unknown field → NULL
	{"missing IS NULL", true}, // unknown field in IS NULL
	{"sym = 3", true},         // incomparable eq → never true
	{"sym != 3", true},        // incomparable ne → true for non-null
	{"1 = 1", true},           // const-folds
	{"qty + 1 > 2", false},    // arithmetic → row path
	{"sym LIKE 'AC%'", false}, // LIKE → row path
	{"sym > 3", false},        // incomparable ordering errors row-side
	{"qty = price", false},    // field vs field → row path
}

func TestFilterDifferential(t *testing.T) {
	schema := eventsSchema(t)
	rng := rand.New(rand.NewSource(7))
	n := 3000
	rows := make([]storage.Row, n)
	ids := make([]storage.RowID, n)
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		r, err := schema.RowFromMap(randEvent(rng, i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = r
		ids[i] = storage.RowID(i + 1)
		lsns[i] = uint64(i + 1)
	}
	seg, err := buildSegment("events", schema, ids, lsns, rows)
	if err != nil {
		t.Fatal(err)
	}

	mask := make([]int8, BatchSize)
	for _, tc := range filterExprs {
		pred, err := expr.Compile(tc.src)
		if err != nil {
			t.Fatalf("compile %q: %v", tc.src, err)
		}
		prog, ok := CompileFilter(pred.Root, schema)
		if ok != tc.compile {
			t.Errorf("CompileFilter(%q) ok = %v, want %v", tc.src, ok, tc.compile)
			continue
		}
		if !ok {
			continue
		}
		rd := seg.NewReader(prog.NeedCols())
		var b Batch
		for rd.Next(&b) {
			prog.Eval(&b, mask)
			for i := 0; i < b.Len; i++ {
				row := rows[b.Start+i]
				want, err := pred.Match(storage.RowResolver{Schema: schema, Row: row})
				if err != nil {
					t.Fatalf("%q row %d: row-path error %v", tc.src, b.Start+i, err)
				}
				got := mask[i] == 1
				if got != want {
					t.Fatalf("%q row %d (%v): columnar=%v row=%v",
						tc.src, b.Start+i, row, got, want)
				}
			}
		}
	}
}

func TestDeadMarkingAndModified(t *testing.T) {
	db := openVolatile(t)
	fillEvents(t, db, 200, 3)
	m := attach(t, db, Config{SealRows: 64})
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("events")
	ids, _ := tbl.ScanRows()
	upID, delID := ids[10], ids[20]
	if err := db.UpdateRow("events", upID, map[string]val.Value{"qty": val.Int(9999)}); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteRow("events", delID); err != nil {
		t.Fatal(err)
	}
	st := m.Table("events")
	snap := st.Snapshot()
	if !snap.InRowStore(upID) {
		t.Error("updated sealed row must read from the row store")
	}
	if snap.InRowStore(delID) {
		t.Error("deleted row is not in the row store")
	}
	live := segRows(t, st)
	if _, ok := live[upID]; ok {
		t.Error("updated row still live in segments")
	}
	if _, ok := live[delID]; ok {
		t.Error("deleted row still live in segments")
	}
	// 200 sealed inserts remain sealed history; 2 are dead.
	stats := st.Stats()
	if stats.SealedRows != 200 || stats.DeadRows != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWholeCommitSealing(t *testing.T) {
	db := openVolatile(t)
	m := attach(t, db, Config{SealRows: 64})
	// One transaction with 100 inserts: a seal triggered at 64 pending
	// rows must extend the cut to the commit boundary.
	txn := db.Begin()
	for i := 0; i < 100; i++ {
		if err := txn.Insert("events", map[string]val.Value{"id": val.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 120; i++ {
		if _, err := db.Insert("events", map[string]val.Value{"id": val.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	st := m.Table("events")
	snap := st.Snapshot()
	first := snap.Segs[0].Seg
	if first.Rows() < 100 {
		t.Fatalf("first segment has %d rows; the 100-row commit was split", first.Rows())
	}
	if snap.SealedRows() != 120 {
		t.Fatalf("sealed rows = %d", snap.SealedRows())
	}
}

func TestMineInsertsMatchesHistory(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(eventsSchema(t)); err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, 150, 5)
	tbl, _ := db.Table("events")
	ids, _ := tbl.ScanRows()
	// Update and delete a few rows so the history includes superseded
	// inserts — MineInserts must still replay the original inserts.
	db.UpdateRow("events", ids[3], map[string]val.Value{"qty": val.Int(1)})
	db.DeleteRow("events", ids[4])

	m := attach(t, db, Config{SealRows: 64, Dir: filepath.Join(dir, "segments")})
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	var mineIDs []storage.RowID
	next, err := m.MineInserts("events", 0, func(lsn uint64, c *storage.Change) error {
		lsns = append(lsns, lsn)
		mineIDs = append(mineIDs, c.ID)
		if c.Kind != storage.Insert || c.Table != "events" || len(c.New) == 0 {
			t.Fatalf("bad change: %+v", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mineIDs) != 150 {
		t.Fatalf("mined %d inserts, want 150 (deletes must not erase history)", len(mineIDs))
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] < lsns[i-1] {
			t.Fatal("mined LSNs out of order")
		}
	}
	if next != lsns[len(lsns)-1]+1 {
		t.Fatalf("next = %d, want %d", next, lsns[len(lsns)-1]+1)
	}
	// Mining from the middle yields a suffix.
	mid := lsns[75]
	count := 0
	if _, err := m.MineInserts("events", mid, func(lsn uint64, c *storage.Change) error {
		if lsn < mid {
			t.Fatalf("lsn %d < from %d", lsn, mid)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 150-75 {
		t.Fatalf("suffix mine = %d rows, want %d", count, 150-75)
	}
}

func TestPersistReloadAndCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	segDir := filepath.Join(dir, "segments")
	open := func() *storage.DB {
		db, err := storage.Open(storage.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	if err := db.CreateTable(eventsSchema(t)); err != nil {
		t.Fatal(err)
	}
	fillEvents(t, db, 300, 9)
	m, err := Attach(db, Config{SealRows: 64, Dir: segDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	want := segRows(t, m.Table("events"))
	segsBefore := len(m.Table("events").Snapshot().Segs)
	m.Close()
	db.Close()

	files, _ := filepath.Glob(filepath.Join(segDir, "*.seg"))
	if len(files) != segsBefore {
		t.Fatalf("%d segment files, want %d", len(files), segsBefore)
	}

	// Clean reload: segments come back from files.
	db = open()
	m, err = Attach(db, Config{SealRows: 64, Dir: segDir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Table("events").Snapshot().Segs); got != segsBefore {
		t.Fatalf("reloaded %d segments, want %d", got, segsBefore)
	}
	got := segRows(t, m.Table("events"))
	if len(got) != len(want) {
		t.Fatalf("reloaded %d rows, want %d", len(got), len(want))
	}
	for id, row := range want {
		if !rowsEqual(got[id], row) {
			t.Fatalf("row %d differs after reload", id)
		}
	}
	m.Close()
	db.Close()

	// Crash simulation: corrupt one segment file and leave a partial
	// temp file. Both must be discarded and the rows rebuilt from the
	// WAL.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(segDir, "ffff-0000000000000001.seg.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	db = open()
	m, err = Attach(db, Config{SealRows: 64, Dir: segDir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer m.Close()
	if m.Err() == nil {
		t.Error("corrupt segment should surface via Err()")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt segment file should be deleted")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover temp file should be deleted")
	}
	// The corrupted segment's rows (and any dropped suffix) are pending
	// again; force a seal and verify full history is intact.
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	got = segRows(t, m.Table("events"))
	if len(got) != len(want) {
		t.Fatalf("rebuilt %d rows, want %d", len(got), len(want))
	}
	for id, row := range want {
		if !rowsEqual(got[id], row) {
			t.Fatalf("row %d differs after rebuild", id)
		}
	}
}

func TestVolatileBootstrapSnapshots(t *testing.T) {
	db := openVolatile(t)
	fillEvents(t, db, 100, 11)
	m := attach(t, db, Config{SealRows: 64})
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	if n := m.Table("events").Snapshot().SealedRows(); n != 100 {
		t.Fatalf("sealed %d rows from pre-attach state, want 100", n)
	}
	// Post-attach inserts keep flowing through the hook.
	rng := rand.New(rand.NewSource(12))
	for i := 100; i < 150; i++ {
		if _, err := db.Insert("events", randEvent(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Compact("events"); err != nil {
		t.Fatal(err)
	}
	if n := m.Table("events").Snapshot().SealedRows(); n != 150 {
		t.Fatalf("sealed %d rows, want 150", n)
	}
}

func TestBackgroundSealer(t *testing.T) {
	db := openVolatile(t)
	m := attach(t, db, Config{SealRows: 64, SealInterval: 10 * time.Millisecond})
	fillEvents(t, db, 200, 13)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Table("events")
		if st != nil {
			if snap := st.Snapshot(); snap != nil && snap.SealedRows() >= 64 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("sealer never sealed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsAndCompactAll(t *testing.T) {
	db := openVolatile(t)
	fillEvents(t, db, 100, 15)
	m := attach(t, db, Config{SealRows: 64})
	stats, err := m.Compact("")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Table != "events" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].SealedRows != 100 || stats[0].Segments == 0 || stats[0].MemBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := m.Stats(); len(got) != 1 || got[0].PendingRows != 0 {
		t.Fatalf("Stats() = %+v", got)
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	db := openVolatile(t)
	attach(t, db, Config{})
	if _, err := Attach(db, Config{}); err == nil {
		t.Fatal("second attach must fail")
	}
}

// TestAllocsFilterScan guards the vectorized scan's hot loop: once the
// reader and mask exist, zone probes and per-batch filter evaluation
// must not allocate at all — that is the difference between a columnar
// scan and a boxed row scan.
func TestAllocsFilterScan(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	schema := eventsSchema(t)
	rng := rand.New(rand.NewSource(21))
	n := 4 * BatchSize
	rows := make([]storage.Row, n)
	ids := make([]storage.RowID, n)
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		r, err := schema.RowFromMap(randEvent(rng, i))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = r
		ids[i] = storage.RowID(i + 1)
		lsns[i] = uint64(i + 1)
	}
	seg, err := buildSegment("events", schema, ids, lsns, rows)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.Compile("sym = 'ACME' AND qty > 0 AND price IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	prog, ok := CompileFilter(pred.Root, schema)
	if !ok {
		t.Fatal("filter should compile")
	}

	if a := testing.AllocsPerRun(100, func() {
		if !seg.CanMatch(pred.EqPreds, pred.RangePreds) {
			t.Fatal("segment should survive the zone probe")
		}
	}); a != 0 {
		t.Errorf("zone probe allocates %v/op, want 0", a)
	}

	rd := seg.NewReader(prog.NeedCols())
	mask := make([]int8, BatchSize)
	var b Batch
	if !rd.Next(&b) {
		t.Fatal("no batch")
	}
	// Warm up per-segment caches (string dictionary binding).
	prog.Eval(&b, mask)
	if a := testing.AllocsPerRun(100, func() {
		prog.Eval(&b, mask)
	}); a != 0 {
		t.Errorf("filter eval allocates %v/batch, want 0", a)
	}

	// A full-segment decode pass reuses reader buffers: the steady
	// state is allocation-free per batch.
	rd2 := seg.NewReader(prog.NeedCols())
	var b2 Batch
	rd2.Next(&b2)
	if a := testing.AllocsPerRun(2, func() {
		for rd2.Next(&b2) {
			prog.Eval(&b2, mask)
		}
	}); a != 0 {
		t.Errorf("segment scan allocates %v/pass, want 0", a)
	}
}

func TestSegmentFileNameStability(t *testing.T) {
	got := segFileName("events", 7)
	want := fmt.Sprintf("%x-%016x.seg", "events", 7)
	if got != want {
		t.Fatalf("segFileName = %q, want %q", got, want)
	}
}
