package columnar

import (
	"encoding/binary"
	"fmt"
	"math"

	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// buildSegment seals rows (parallel slices, already in RowID order)
// into an immutable segment. The row slices are not retained; every
// value is re-encoded column-wise.
func buildSegment(table string, schema *storage.Schema, ids []storage.RowID, lsns []uint64, rows []storage.Row) (*Segment, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("columnar: empty segment for table %q", table)
	}
	s := &Segment{
		table:    table,
		schema:   schema,
		rows:     n,
		ids:      append([]storage.RowID(nil), ids...),
		lsns:     append([]uint64(nil), lsns...),
		firstLSN: lsns[0],
		lastLSN:  lsns[n-1],
		cols:     make([]column, len(schema.Columns)),
	}
	for ci, sc := range schema.Columns {
		col, err := buildColumn(sc.Kind, rows, ci)
		if err != nil {
			return nil, fmt.Errorf("columnar: table %q column %q: %w", table, sc.Name, err)
		}
		s.cols[ci] = col
		s.bytes += col.memBytes()
	}
	s.bytes += n * (8 + 8) // ids + lsns
	return s, nil
}

func buildColumn(k val.Kind, rows []storage.Row, ci int) (column, error) {
	switch k {
	case val.KindInt, val.KindTime:
		return buildIntColumn(k, rows, ci)
	case val.KindFloat:
		return buildFloatColumn(rows, ci)
	case val.KindBool:
		return buildBoolColumn(rows, ci)
	case val.KindString:
		return buildStrColumn(rows, ci)
	case val.KindBytes:
		return buildBytesColumn(rows, ci)
	default:
		return nil, fmt.Errorf("unsupported column kind %s", k)
	}
}

// zoneTrack folds one non-null value into a zone map under
// construction. NaN floats invalidate the zone (they defeat min/max
// ordering, so a segment containing one is never pruned).
type zoneTrack struct {
	z      Zone
	broken bool
}

func (t *zoneTrack) null() { t.z.Nulls++ }

func (t *zoneTrack) add(v val.Value) {
	if t.broken {
		return
	}
	if isNaN(v) {
		t.broken = true
		t.z.OK = false
		return
	}
	if !t.z.OK {
		t.z.Min, t.z.Max, t.z.OK = v, v, true
		return
	}
	if c, err := val.Compare(v, t.z.Min); err == nil && c < 0 {
		t.z.Min = v
	}
	if c, err := val.Compare(v, t.z.Max); err == nil && c > 0 {
		t.z.Max = v
	}
}

func (t *zoneTrack) done() Zone {
	if t.broken {
		return Zone{Nulls: t.z.Nulls}
	}
	return t.z
}

// setNull marks row i null in a lazily allocated validity bitmap.
func setNull(nulls *[]uint64, n, i int) {
	if *nulls == nil {
		*nulls = make([]uint64, (n+63)/64)
	}
	(*nulls)[i/64] |= 1 << uint(i%64)
}

func buildIntColumn(k val.Kind, rows []storage.Row, ci int) (column, error) {
	c := &intColumn{k: k, rows: len(rows)}
	var zt zoneTrack
	var prev int64
	var scratch [binary.MaxVarintLen64]byte
	c.data = make([]byte, 0, len(rows)*2)
	for i, r := range rows {
		v := r[ci]
		var cur int64
		if v.IsNull() {
			setNull(&c.nulls, len(rows), i)
			zt.null()
			cur = prev // delta 0 keeps the stream dense
		} else {
			switch v.Kind() {
			case val.KindInt:
				cur, _ = v.AsInt()
			case val.KindTime:
				t, _ := v.AsTime()
				cur = t.UnixNano()
			default:
				return nil, fmt.Errorf("kind %s in %s column", v.Kind(), k)
			}
			zt.add(v)
		}
		w := binary.PutVarint(scratch[:], cur-prev)
		c.data = append(c.data, scratch[:w]...)
		prev = cur
	}
	c.z = zt.done()
	return c, nil
}

func buildFloatColumn(rows []storage.Row, ci int) (column, error) {
	c := &floatColumn{vals: make([]float64, len(rows))}
	var zt zoneTrack
	for i, r := range rows {
		v := r[ci]
		if v.IsNull() {
			setNull(&c.nulls, len(rows), i)
			zt.null()
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			return nil, fmt.Errorf("kind %s in float column", v.Kind())
		}
		c.vals[i] = f
		zt.add(val.Float(f))
	}
	c.z = zt.done()
	return c, nil
}

func buildBoolColumn(rows []storage.Row, ci int) (column, error) {
	c := &boolColumn{bits: make([]uint64, (len(rows)+63)/64), rows: len(rows)}
	var zt zoneTrack
	for i, r := range rows {
		v := r[ci]
		if v.IsNull() {
			setNull(&c.nulls, len(rows), i)
			zt.null()
			continue
		}
		b, ok := v.AsBool()
		if !ok {
			return nil, fmt.Errorf("kind %s in bool column", v.Kind())
		}
		if b {
			c.bits[i/64] |= 1 << uint(i%64)
		}
		zt.add(v)
	}
	c.z = zt.done()
	return c, nil
}

func buildStrColumn(rows []storage.Row, ci int) (column, error) {
	c := &strColumn{codes: make([]uint32, len(rows))}
	codeOf := make(map[string]uint32)
	var zt zoneTrack
	for i, r := range rows {
		v := r[ci]
		if v.IsNull() {
			setNull(&c.nulls, len(rows), i)
			zt.null()
			continue
		}
		s, ok := v.AsString()
		if !ok {
			return nil, fmt.Errorf("kind %s in string column", v.Kind())
		}
		code, seen := codeOf[s]
		if !seen {
			if len(c.dict) > math.MaxUint32 {
				return nil, fmt.Errorf("dictionary overflow")
			}
			code = uint32(len(c.dict))
			c.dict = append(c.dict, s)
			codeOf[s] = code
		}
		c.codes[i] = code
		zt.add(v)
	}
	c.z = zt.done()
	return c, nil
}

func buildBytesColumn(rows []storage.Row, ci int) (column, error) {
	c := &bytesColumn{offs: make([]uint32, len(rows)+1)}
	var zt zoneTrack
	for i, r := range rows {
		v := r[ci]
		if v.IsNull() {
			setNull(&c.nulls, len(rows), i)
			zt.null()
			c.offs[i+1] = c.offs[i]
			continue
		}
		b, ok := v.AsBytes()
		if !ok {
			return nil, fmt.Errorf("kind %s in bytes column", v.Kind())
		}
		if len(c.blob)+len(b) > math.MaxUint32 {
			return nil, fmt.Errorf("blob overflow")
		}
		c.blob = append(c.blob, b...)
		c.offs[i+1] = uint32(len(c.blob))
		zt.add(v)
	}
	c.z = zt.done()
	return c, nil
}
