package columnar

import (
	"bytes"
	"strings"

	"eventdb/internal/expr"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// FilterProg is an expr predicate compiled to vector kernels: one
// fnode per AST node, each evaluating a whole batch of column values
// into a tri-state mask. Masks use Kleene three-valued logic exactly
// as expr.Eval does — 1 true, 0 false, -1 NULL — and only 1 admits a
// row (SQL WHERE semantics). All scratch space is allocated at
// compile time, so evaluating a batch performs zero allocations.
//
// Compilation is conservative: any construct whose row-path semantics
// the kernels cannot reproduce bit-for-bit (LIKE, function calls,
// arithmetic, field-vs-field comparisons, orderings over incomparable
// kinds — which must surface an error, not a mask) fails to compile
// and the caller falls back to the row path.
type FilterProg struct {
	root fnode
	need []bool
}

// CompileFilter compiles root against the table schema. ok=false
// means the expression is not kernel-representable and the caller
// must use row-at-a-time evaluation.
func CompileFilter(root expr.Node, schema *storage.Schema) (*FilterProg, bool) {
	need := make([]bool, len(schema.Columns))
	n, ok := compileNode(root, schema, need)
	if !ok {
		return nil, false
	}
	return &FilterProg{root: n, need: need}, true
}

// NeedCols returns, per schema column, whether the filter reads it.
// The slice is owned by the program; callers must not mutate it.
func (p *FilterProg) NeedCols() []bool { return p.need }

// Eval evaluates the filter over a batch, writing b.Len tri-state
// values into out (len(out) >= b.Len).
func (p *FilterProg) Eval(b *Batch, out []int8) { p.root.eval(b, out) }

// fnode is one compiled kernel; eval writes b.Len mask entries.
type fnode interface {
	eval(b *Batch, out []int8)
}

// opMask precomputes a comparison operator's verdict for each
// three-way compare outcome, indexed by cmp+1 (so [0]=less, [1]=equal,
// [2]=greater). The inner loops reduce to one compare and one table
// load per row.
func opMask(op expr.BinaryOp) [3]int8 {
	switch op {
	case expr.OpEq:
		return [3]int8{0, 1, 0}
	case expr.OpNe:
		return [3]int8{1, 0, 1}
	case expr.OpLt:
		return [3]int8{1, 0, 0}
	case expr.OpLe:
		return [3]int8{1, 1, 0}
	case expr.OpGt:
		return [3]int8{0, 0, 1}
	case expr.OpGe:
		return [3]int8{0, 1, 1}
	}
	return [3]int8{}
}

type constNode struct{ v int8 }

func (n *constNode) eval(b *Batch, out []int8) {
	for i := 0; i < b.Len; i++ {
		out[i] = n.v
	}
}

// boolFieldNode is a bare bool column used directly as a predicate.
type boolFieldNode struct{ ci int }

func (n *boolFieldNode) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	for i := 0; i < b.Len; i++ {
		switch {
		case v.Null[i]:
			out[i] = -1
		case v.I64[i] != 0:
			out[i] = 1
		default:
			out[i] = 0
		}
	}
}

type notNode struct{ x fnode }

func (n *notNode) eval(b *Batch, out []int8) {
	n.x.eval(b, out)
	for i := 0; i < b.Len; i++ {
		if out[i] >= 0 {
			out[i] = 1 - out[i]
		}
	}
}

type andNode struct {
	l, r    fnode
	scratch []int8
}

func (n *andNode) eval(b *Batch, out []int8) {
	n.l.eval(b, out)
	n.r.eval(b, n.scratch)
	for i := 0; i < b.Len; i++ {
		a, c := out[i], n.scratch[i]
		switch {
		case a == 0 || c == 0:
			out[i] = 0
		case a == -1 || c == -1:
			out[i] = -1
		}
	}
}

type orNode struct {
	l, r    fnode
	scratch []int8
}

func (n *orNode) eval(b *Batch, out []int8) {
	n.l.eval(b, out)
	n.r.eval(b, n.scratch)
	for i := 0; i < b.Len; i++ {
		a, c := out[i], n.scratch[i]
		switch {
		case a == 1 || c == 1:
			out[i] = 1
		case a == -1 || c == -1:
			out[i] = -1
		}
	}
}

// cmpI64Node compares an int64-backed column (int, time-as-nanos,
// bool-as-0/1) against a same-class literal.
type cmpI64Node struct {
	ci  int
	lit int64
	res [3]int8
}

func (n *cmpI64Node) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	lit := n.lit
	for i := 0; i < b.Len; i++ {
		if v.Null[i] {
			out[i] = -1
			continue
		}
		x := v.I64[i]
		switch {
		case x < lit:
			out[i] = n.res[0]
		case x > lit:
			out[i] = n.res[2]
		default:
			out[i] = n.res[1]
		}
	}
}

// cmpF64Node compares a numeric column against a numeric literal in
// float space, mirroring val.Compare's int/float coercion (including
// its NaN behaviour: NaN neither less nor greater compares "equal").
type cmpF64Node struct {
	ci       int
	lit      float64
	colIsInt bool
	res      [3]int8
}

func (n *cmpF64Node) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	lit := n.lit
	for i := 0; i < b.Len; i++ {
		if v.Null[i] {
			out[i] = -1
			continue
		}
		var x float64
		if n.colIsInt {
			x = float64(v.I64[i])
		} else {
			x = v.F64[i]
		}
		switch {
		case x < lit:
			out[i] = n.res[0]
		case x > lit:
			out[i] = n.res[2]
		default:
			out[i] = n.res[1]
		}
	}
}

// cmpStrEqNode tests string (in)equality via dictionary codes: one
// dictionary probe per segment turns every row test into a uint32
// compare. hit/miss are the verdicts for equal/unequal rows.
type cmpStrEqNode struct {
	lit       string
	ci        int
	hit, miss int8

	seg  *Segment // dictionary cache key
	code int64    // lit's code in seg's dictionary, -1 if absent
}

func (n *cmpStrEqNode) bind(b *Batch) {
	if b.Seg == n.seg {
		return
	}
	n.seg = b.Seg
	n.code = -1
	for i, s := range b.Vecs[n.ci].Dict {
		if s == n.lit {
			n.code = int64(i)
			break
		}
	}
}

func (n *cmpStrEqNode) eval(b *Batch, out []int8) {
	n.bind(b)
	v := b.Vecs[n.ci]
	for i := 0; i < b.Len; i++ {
		switch {
		case v.Null[i]:
			out[i] = -1
		case int64(v.Code[i]) == n.code:
			out[i] = n.hit
		default:
			out[i] = n.miss
		}
	}
}

// cmpStrOrdNode orders a string column against a literal.
type cmpStrOrdNode struct {
	ci  int
	lit string
	res [3]int8
}

func (n *cmpStrOrdNode) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	for i := 0; i < b.Len; i++ {
		if v.Null[i] {
			out[i] = -1
			continue
		}
		out[i] = n.res[strings.Compare(v.Dict[v.Code[i]], n.lit)+1]
	}
}

// cmpBytesNode orders a bytes column against a literal.
type cmpBytesNode struct {
	ci  int
	lit []byte
	res [3]int8
}

func (n *cmpBytesNode) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	for i := 0; i < b.Len; i++ {
		if v.Null[i] {
			out[i] = -1
			continue
		}
		out[i] = n.res[bytes.Compare(v.Bytes[i], n.lit)+1]
	}
}

// incompatNode handles Eq/Ne between incomparable kinds: NULL rows
// yield NULL, every other row a constant verdict (false for =, true
// for !=), matching evalBinary's incomparable-kind clause.
type incompatNode struct {
	ci int
	v  int8
}

func (n *incompatNode) eval(b *Batch, out []int8) {
	nulls := b.Vecs[n.ci].Null
	for i := 0; i < b.Len; i++ {
		if nulls[i] {
			out[i] = -1
		} else {
			out[i] = n.v
		}
	}
}

type isNullNode struct {
	ci     int
	negate bool
}

func (n *isNullNode) eval(b *Batch, out []int8) {
	nulls := b.Vecs[n.ci].Null
	want := int8(1)
	other := int8(0)
	if n.negate {
		want, other = 0, 1
	}
	for i := 0; i < b.Len; i++ {
		if nulls[i] {
			out[i] = want
		} else {
			out[i] = other
		}
	}
}

// inNode tests membership against a literal list, with the list
// pre-bucketed per kind so the inner loop never boxes. hasNull
// preserves the SQL rule that x IN (…, NULL) is NULL when unmatched.
type inNode struct {
	ci      int
	kind    val.Kind
	i64s    []int64   // exact matches for int/time/bool columns
	f64s    []float64 // coerced numeric matches
	strs    []string
	bts     [][]byte
	hasNull bool
	hit     int8 // verdict on match (0 when negated)
	miss    int8 // verdict on no match and no null literal

	seg   *Segment
	codes []int64 // string literal codes in seg's dictionary
}

func (n *inNode) bind(b *Batch) {
	if b.Seg == n.seg {
		return
	}
	n.seg = b.Seg
	n.codes = n.codes[:0]
	dict := b.Vecs[n.ci].Dict
	for _, s := range n.strs {
		for i, d := range dict {
			if d == s {
				n.codes = append(n.codes, int64(i))
				break
			}
		}
	}
}

func (n *inNode) eval(b *Batch, out []int8) {
	v := b.Vecs[n.ci]
	if n.kind == val.KindString {
		n.bind(b)
	}
	noMatch := n.miss
	if n.hasNull {
		noMatch = -1
	}
	for i := 0; i < b.Len; i++ {
		if v.Null[i] {
			out[i] = -1
			continue
		}
		match := false
		switch n.kind {
		case val.KindInt:
			x := v.I64[i]
			for _, l := range n.i64s {
				if x == l {
					match = true
					break
				}
			}
			if !match && len(n.f64s) > 0 {
				f := float64(x)
				for _, l := range n.f64s {
					if f == l {
						match = true
						break
					}
				}
			}
		case val.KindFloat:
			x := v.F64[i]
			for _, l := range n.f64s {
				if x == l {
					match = true
					break
				}
			}
		case val.KindTime, val.KindBool:
			x := v.I64[i]
			for _, l := range n.i64s {
				if x == l {
					match = true
					break
				}
			}
		case val.KindString:
			x := int64(v.Code[i])
			for _, c := range n.codes {
				if x == c {
					match = true
					break
				}
			}
		case val.KindBytes:
			x := v.Bytes[i]
			for _, l := range n.bts {
				if bytes.Equal(x, l) {
					match = true
					break
				}
			}
		}
		if match {
			out[i] = n.hit
		} else {
			out[i] = noMatch
		}
	}
}

// ---- compilation ----

func compileNode(n expr.Node, schema *storage.Schema, need []bool) (fnode, bool) {
	// Field-free subtrees fold to a constant using the real evaluator,
	// so constant semantics (including errors, which fail compilation
	// and force the row path) are exact by construction.
	if len(expr.Fields(n)) == 0 {
		v, err := expr.Eval(n, expr.EmptyResolver)
		if err != nil {
			return nil, false
		}
		if v.IsNull() {
			return &constNode{v: -1}, true
		}
		b, ok := v.AsBool()
		if !ok {
			return nil, false
		}
		if b {
			return &constNode{v: 1}, true
		}
		return &constNode{v: 0}, true
	}

	switch x := n.(type) {
	case *expr.Field:
		ci := schema.ColIndex(x.Name)
		if ci < 0 {
			// Unknown field resolves to NULL in the row path.
			return &constNode{v: -1}, true
		}
		if schema.Columns[ci].Kind != val.KindBool {
			// A non-bool field in boolean position errors row-side.
			return nil, false
		}
		need[ci] = true
		return &boolFieldNode{ci: ci}, true

	case *expr.Not:
		inner, ok := compileNode(x.X, schema, need)
		if !ok {
			return nil, false
		}
		return &notNode{x: inner}, true

	case *expr.Binary:
		if x.Op == expr.OpAnd || x.Op == expr.OpOr {
			l, ok := compileNode(x.L, schema, need)
			if !ok {
				return nil, false
			}
			r, ok := compileNode(x.R, schema, need)
			if !ok {
				return nil, false
			}
			if x.Op == expr.OpAnd {
				return &andNode{l: l, r: r, scratch: make([]int8, BatchSize)}, true
			}
			return &orNode{l: l, r: r, scratch: make([]int8, BatchSize)}, true
		}
		if !x.Op.IsComparison() {
			return nil, false // arithmetic in boolean position
		}
		field, lit, op, ok := fieldLitCmp(x)
		if !ok {
			return nil, false
		}
		return compileCmp(field, op, lit, schema, need)

	case *expr.Between:
		f, okF := x.X.(*expr.Field)
		lo, okLo := x.Lo.(*expr.Literal)
		hi, okHi := x.Hi.(*expr.Literal)
		if !okF || !okLo || !okHi {
			return nil, false
		}
		if lo.Val.IsNull() || hi.Val.IsNull() {
			// BETWEEN with a NULL bound is NULL for every row,
			// including under NOT BETWEEN.
			return &constNode{v: -1}, true
		}
		ge, ok := compileCmp(f.Name, expr.OpGe, lo.Val, schema, need)
		if !ok {
			return nil, false
		}
		le, ok := compileCmp(f.Name, expr.OpLe, hi.Val, schema, need)
		if !ok {
			return nil, false
		}
		var out fnode = &andNode{l: ge, r: le, scratch: make([]int8, BatchSize)}
		if x.Negate {
			out = &notNode{x: out}
		}
		return out, true

	case *expr.In:
		f, okF := x.X.(*expr.Field)
		if !okF {
			return nil, false
		}
		ci := schema.ColIndex(f.Name)
		if ci < 0 {
			return &constNode{v: -1}, true // NULL IN (...) is NULL
		}
		node := &inNode{ci: ci, kind: schema.Columns[ci].Kind, hit: 1, miss: 0}
		if x.Negate {
			node.hit, node.miss = 0, 1
		}
		for _, alt := range x.List {
			l, okL := alt.(*expr.Literal)
			if !okL {
				return nil, false
			}
			lv := l.Val
			if lv.IsNull() {
				node.hasNull = true
				continue
			}
			// Bucket literals that can equal a value of the column's
			// kind; others are unreachable and simply dropped.
			switch node.kind {
			case val.KindInt:
				if i, ok := lv.AsInt(); ok {
					node.i64s = append(node.i64s, i)
				} else if f64, ok := lv.AsFloat(); ok {
					node.f64s = append(node.f64s, f64)
				}
			case val.KindFloat:
				if f64, ok := lv.AsFloat(); ok {
					node.f64s = append(node.f64s, f64)
				}
			case val.KindTime:
				if t, ok := lv.AsTime(); ok {
					node.i64s = append(node.i64s, t.UnixNano())
				}
			case val.KindBool:
				if bv, ok := lv.AsBool(); ok {
					if bv {
						node.i64s = append(node.i64s, 1)
					} else {
						node.i64s = append(node.i64s, 0)
					}
				}
			case val.KindString:
				if s, ok := lv.AsString(); ok {
					node.strs = append(node.strs, s)
				}
			case val.KindBytes:
				if bb, ok := lv.AsBytes(); ok {
					node.bts = append(node.bts, bb)
				}
			}
		}
		need[ci] = true
		return node, true

	case *expr.IsNull:
		f, okF := x.X.(*expr.Field)
		if !okF {
			return nil, false
		}
		ci := schema.ColIndex(f.Name)
		if ci < 0 {
			// Unknown field is NULL: IS NULL true, IS NOT NULL false.
			if x.Negate {
				return &constNode{v: 0}, true
			}
			return &constNode{v: 1}, true
		}
		need[ci] = true
		return &isNullNode{ci: ci, negate: x.Negate}, true
	}
	return nil, false
}

// fieldLitCmp recognizes field OP literal / literal OP field,
// flipping ordering operators in the latter case.
func fieldLitCmp(b *expr.Binary) (field string, lit val.Value, op expr.BinaryOp, ok bool) {
	if f, okF := b.L.(*expr.Field); okF {
		if l, okL := b.R.(*expr.Literal); okL {
			return f.Name, l.Val, b.Op, true
		}
	}
	if l, okL := b.L.(*expr.Literal); okL {
		if f, okF := b.R.(*expr.Field); okF {
			switch b.Op {
			case expr.OpLt:
				return f.Name, l.Val, expr.OpGt, true
			case expr.OpLe:
				return f.Name, l.Val, expr.OpGe, true
			case expr.OpGt:
				return f.Name, l.Val, expr.OpLt, true
			case expr.OpGe:
				return f.Name, l.Val, expr.OpLe, true
			default:
				return f.Name, l.Val, b.Op, true
			}
		}
	}
	return "", val.Null, 0, false
}

func compileCmp(field string, op expr.BinaryOp, lit val.Value, schema *storage.Schema, need []bool) (fnode, bool) {
	ci := schema.ColIndex(field)
	if ci < 0 || lit.IsNull() {
		// Unknown field or NULL literal: comparison is NULL row-wide.
		return &constNode{v: -1}, true
	}
	colKind := schema.Columns[ci].Kind
	res := opMask(op)
	eqNe := op == expr.OpEq || op == expr.OpNe

	// incompat builds the incomparable-kinds kernel: = is false and
	// != is true for non-null rows; ordering operators error row-side,
	// so they are not kernel-representable.
	incompat := func() (fnode, bool) {
		if !eqNe {
			return nil, false
		}
		need[ci] = true
		v := int8(0)
		if op == expr.OpNe {
			v = 1
		}
		return &incompatNode{ci: ci, v: v}, true
	}

	switch colKind {
	case val.KindInt:
		if i, ok := lit.AsInt(); ok {
			need[ci] = true
			return &cmpI64Node{ci: ci, lit: i, res: res}, true
		}
		if f, ok := lit.AsFloat(); ok {
			need[ci] = true
			return &cmpF64Node{ci: ci, lit: f, colIsInt: true, res: res}, true
		}
		return incompat()
	case val.KindFloat:
		if f, ok := lit.AsFloat(); ok {
			need[ci] = true
			return &cmpF64Node{ci: ci, lit: f, res: res}, true
		}
		return incompat()
	case val.KindTime:
		if t, ok := lit.AsTime(); ok {
			need[ci] = true
			return &cmpI64Node{ci: ci, lit: t.UnixNano(), res: res}, true
		}
		return incompat()
	case val.KindBool:
		if bv, ok := lit.AsBool(); ok {
			need[ci] = true
			var n int64
			if bv {
				n = 1
			}
			return &cmpI64Node{ci: ci, lit: n, res: res}, true
		}
		return incompat()
	case val.KindString:
		if s, ok := lit.AsString(); ok {
			need[ci] = true
			if eqNe {
				node := &cmpStrEqNode{ci: ci, lit: s, hit: 1, miss: 0}
				if op == expr.OpNe {
					node.hit, node.miss = 0, 1
				}
				return node, true
			}
			return &cmpStrOrdNode{ci: ci, lit: s, res: res}, true
		}
		return incompat()
	case val.KindBytes:
		if bb, ok := lit.AsBytes(); ok {
			need[ci] = true
			return &cmpBytesNode{ci: ci, lit: bb, res: res}, true
		}
		return incompat()
	}
	return nil, false
}

// CanMatch consults the segment's zone maps against a predicate's
// extracted conjuncts: if any equality or range conjunct provably
// excludes every row, the whole segment is pruned without decoding a
// single column. Conservative by construction — the conjuncts are
// necessary conditions of the full predicate.
func (s *Segment) CanMatch(eqs []expr.EqPred, ranges []expr.RangePred) bool {
	for i := range eqs {
		ci := s.schema.ColIndex(eqs[i].Field)
		if ci < 0 {
			// Unknown field: the conjunct evaluates NULL for every
			// row, so nothing in this segment (or anywhere) matches.
			return false
		}
		if zoneExcludesEq(s.cols[ci].zone(), s.rows, eqs[i].Value) {
			return false
		}
	}
	for i := range ranges {
		r := &ranges[i]
		ci := s.schema.ColIndex(r.Field)
		if ci < 0 {
			return false
		}
		if zoneExcludesRange(s.cols[ci].zone(), s.rows, r.Lo, r.Hi, r.LoOpen, r.HiOpen, r.LoUnbounded, r.HiUnbounded) {
			return false
		}
	}
	return true
}
