// Package columnar implements the engine's columnar event-history
// store: immutable sealed segments holding table history as typed
// column vectors — dictionary-encoded strings, delta-encoded
// int64/timestamps, validity bitmaps — with per-segment zone maps
// (min/max/null-count per column) for scan pruning.
//
// Hot recent data stays in the row store; a background sealer drains
// committed row batches into segments (see store.go), the query
// processor's filter+aggregate path vectorizes over them (filter.go,
// internal/query), and journal mining serves sealed insert history
// from segments instead of replaying the WAL. This is ROADMAP item 3:
// "replay a week of events through a new CQ" becomes a seconds-scale
// columnar scan instead of a row-map crawl.
package columnar

import (
	"encoding/binary"
	"math"
	"time"

	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// BatchSize is the number of rows decoded per vector batch. 1k rows
// keeps every working vector comfortably inside L1/L2 while amortizing
// per-batch dispatch over enough rows that the per-row cost is a few
// nanoseconds.
const BatchSize = 1024

// Zone is a column's zone map: the segment-level summary consulted
// before any row of the column is decoded.
type Zone struct {
	// Min and Max bound the column's non-null values. Only meaningful
	// when OK; a column of all nulls (or containing NaN, which defeats
	// ordering) has OK=false and is never used for pruning.
	Min, Max val.Value
	OK       bool
	// Nulls counts null rows in the column.
	Nulls int
}

// Segment is one immutable sealed batch of table history: rows
// [FirstID..LastID] committed at LSNs [FirstLSN..LastLSN], stored
// column-wise. All fields are frozen at seal time except the dead
// bitmap, which the owning TableStore maintains under its lock as
// later commits update or delete sealed rows.
type Segment struct {
	table  string
	schema *storage.Schema
	rows   int

	// ids holds each row's RowID, strictly increasing (IDs are
	// allocated monotonically and commits deliver in order), so row
	// position is a binary search away.
	ids []storage.RowID
	// lsns holds each row's commit LSN, non-decreasing. Zero throughout
	// on a volatile database.
	lsns []uint64

	firstLSN, lastLSN uint64

	cols []column

	// dead marks rows superseded after sealing (updated or deleted in
	// the row store). Guarded by the owning TableStore's mutex; nil
	// until the first mark. Scans skip dead rows; history mining
	// (REPLAY) deliberately ignores the bitmap — the insert happened
	// regardless of the row's later fate.
	dead      []uint64
	deadCount int

	bytes int // approximate in-memory footprint
}

// Table returns the table this segment holds history for.
func (s *Segment) Table() string { return s.table }

// Rows returns the number of rows sealed in the segment.
func (s *Segment) Rows() int { return s.rows }

// Bounds returns the segment's RowID and LSN coverage.
func (s *Segment) Bounds() (firstID, lastID storage.RowID, firstLSN, lastLSN uint64) {
	return s.ids[0], s.ids[s.rows-1], s.firstLSN, s.lastLSN
}

// DeadRows returns how many sealed rows have been superseded.
func (s *Segment) DeadRows() int { return s.deadCount }

// MemBytes returns the approximate in-memory size of the segment.
func (s *Segment) MemBytes() int { return s.bytes }

// RowID returns the RowID of row i.
func (s *Segment) RowID(i int) storage.RowID { return s.ids[i] }

// LSN returns the commit LSN of row i.
func (s *Segment) LSN(i int) uint64 { return s.lsns[i] }

// find returns the position of id in the segment, or -1.
func (s *Segment) find(id storage.RowID) int {
	lo, hi := 0, s.rows
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.rows && s.ids[lo] == id {
		return lo
	}
	return -1
}

// markDead flags row position i as superseded. Caller holds the
// TableStore lock.
func (s *Segment) markDead(i int) {
	if s.dead == nil {
		s.dead = make([]uint64, (s.rows+63)/64)
	}
	w, b := i/64, uint(i%64)
	if s.dead[w]&(1<<b) == 0 {
		s.dead[w] |= 1 << b
		s.deadCount++
	}
}

// deadBit reports whether row i is marked dead in the given bitmap
// (nil = nothing dead).
func deadBit(bits []uint64, i int) bool {
	if bits == nil {
		return false
	}
	return bits[i/64]&(1<<uint(i%64)) != 0
}

// Zone returns the zone map for schema column ci.
func (s *Segment) Zone(ci int) Zone { return s.cols[ci].zone() }

// column is one sealed column's encoded storage.
type column interface {
	kind() val.Kind
	zone() Zone
	// newCursor returns a sequential decoder positioned at row 0.
	newCursor() cursor
	// memBytes approximates the column's in-memory footprint.
	memBytes() int
}

// cursor decodes a column front to back, BatchSize rows at a time.
type cursor interface {
	// next decodes the next n values into dst. n is at most BatchSize;
	// dst's buffers are reused across calls.
	next(dst *Vector, n int)
}

// Vector is a decoded batch of one column. Exactly one payload slice
// is populated, per Kind:
//
//	int, time, bool → I64 (time as Unix nanoseconds, bool as 0/1)
//	float           → F64
//	string          → Code (+ Dict, the segment-wide dictionary)
//	bytes           → Bytes (sub-slices of the segment blob; read-only)
//
// Null[i] reports row nullness and is always populated.
type Vector struct {
	Kind  val.Kind
	I64   []int64
	F64   []float64
	Code  []uint32
	Dict  []string
	Bytes [][]byte
	Null  []bool
}

// Value boxes row i of the vector back into a val.Value. This is the
// materialization path for matched rows only — the filter and
// aggregate kernels never box.
func (v *Vector) Value(i int) val.Value {
	if v.Null[i] {
		return val.Null
	}
	switch v.Kind {
	case val.KindInt:
		return val.Int(v.I64[i])
	case val.KindFloat:
		return val.Float(v.F64[i])
	case val.KindString:
		return val.String(v.Dict[v.Code[i]])
	case val.KindBool:
		return val.Bool(v.I64[i] != 0)
	case val.KindTime:
		return val.Time(time.Unix(0, v.I64[i]).UTC())
	case val.KindBytes:
		return val.Bytes(v.Bytes[i])
	default:
		return val.Null
	}
}

// Batch is one decoded slab of segment rows: rows [Start, Start+Len)
// with Vecs[ci] populated for every requested schema column (nil
// otherwise).
type Batch struct {
	Seg   *Segment
	Start int
	Len   int
	Vecs  []*Vector
}

// Reader streams a segment's rows as batches, decoding only the
// requested columns. All buffers are allocated once at construction
// and reused, so a full-segment scan costs a handful of allocations
// total, none per row.
type Reader struct {
	seg     *Segment
	cursors []cursor // per schema column, nil when not requested
	vecs    []Vector
	pos     int
}

// NewReader creates a reader over the segment decoding the columns
// where need[ci] is true (need == nil decodes every column).
func (s *Segment) NewReader(need []bool) *Reader {
	r := &Reader{
		seg:     s,
		cursors: make([]cursor, len(s.cols)),
		vecs:    make([]Vector, len(s.cols)),
	}
	for ci, c := range s.cols {
		if need != nil && !need[ci] {
			continue
		}
		r.cursors[ci] = c.newCursor()
		v := &r.vecs[ci]
		v.Kind = c.kind()
		v.Null = make([]bool, BatchSize)
		switch c.kind() {
		case val.KindInt, val.KindTime, val.KindBool:
			v.I64 = make([]int64, BatchSize)
		case val.KindFloat:
			v.F64 = make([]float64, BatchSize)
		case val.KindString:
			v.Code = make([]uint32, BatchSize)
			v.Dict = c.(*strColumn).dict
		case val.KindBytes:
			v.Bytes = make([][]byte, BatchSize)
		}
	}
	return r
}

// Next decodes the next batch into b, returning false at end of
// segment. b's vector pointers alias the reader's reusable buffers
// and are only valid until the following Next call.
func (r *Reader) Next(b *Batch) bool {
	if r.pos >= r.seg.rows {
		return false
	}
	n := r.seg.rows - r.pos
	if n > BatchSize {
		n = BatchSize
	}
	if b.Vecs == nil {
		b.Vecs = make([]*Vector, len(r.cursors))
	}
	for ci, cur := range r.cursors {
		if cur == nil {
			b.Vecs[ci] = nil
			continue
		}
		v := &r.vecs[ci]
		cur.next(v, n)
		b.Vecs[ci] = v
	}
	b.Seg = r.seg
	b.Start = r.pos
	b.Len = n
	r.pos += n
	return true
}

// MaterializeRow boxes batch row i into dst (a full-width
// storage.Row); columns that were not decoded stay Null. dst must
// have len == schema width.
func (b *Batch) MaterializeRow(dst storage.Row, i int) {
	for ci, v := range b.Vecs {
		if v == nil {
			dst[ci] = val.Null
			continue
		}
		dst[ci] = v.Value(i)
	}
}

// ---- column implementations ----

// intColumn stores int64-backed kinds (int, time-as-nanos) as a
// zigzag-varint delta stream: each value is encoded as the delta from
// its predecessor, which collapses timestamps and monotone counters
// to one or two bytes per row. Nulls encode as delta 0 with the
// validity bit cleared.
type intColumn struct {
	k     val.Kind
	data  []byte
	rows  int
	nulls []uint64 // validity bitmap (bit set = null); nil when none
	z     Zone
}

func (c *intColumn) kind() val.Kind { return c.k }
func (c *intColumn) zone() Zone     { return c.z }
func (c *intColumn) memBytes() int  { return len(c.data) + len(c.nulls)*8 }

type intCursor struct {
	c    *intColumn
	off  int
	prev int64
	row  int
}

func (c *intColumn) newCursor() cursor { return &intCursor{c: c} }

func (cur *intCursor) next(dst *Vector, n int) {
	data := cur.c.data
	out := dst.I64[:n]
	nul := dst.Null[:n]
	for i := 0; i < n; i++ {
		d, w := binary.Varint(data[cur.off:])
		cur.off += w
		cur.prev += d
		out[i] = cur.prev
		nul[i] = deadBit(cur.c.nulls, cur.row)
		cur.row++
	}
}

// floatColumn stores float64 values raw (8 bytes each); deltas do not
// compress IEEE doubles usefully.
type floatColumn struct {
	vals  []float64
	nulls []uint64
	z     Zone
}

func (c *floatColumn) kind() val.Kind { return val.KindFloat }
func (c *floatColumn) zone() Zone     { return c.z }
func (c *floatColumn) memBytes() int  { return len(c.vals)*8 + len(c.nulls)*8 }

type floatCursor struct {
	c   *floatColumn
	row int
}

func (c *floatColumn) newCursor() cursor { return &floatCursor{c: c} }

func (cur *floatCursor) next(dst *Vector, n int) {
	copy(dst.F64[:n], cur.c.vals[cur.row:cur.row+n])
	nul := dst.Null[:n]
	for i := 0; i < n; i++ {
		nul[i] = deadBit(cur.c.nulls, cur.row+i)
	}
	cur.row += n
}

// boolColumn stores values and validity as bitmaps: one bit per row
// each way.
type boolColumn struct {
	bits  []uint64
	rows  int
	nulls []uint64
	z     Zone
}

func (c *boolColumn) kind() val.Kind { return val.KindBool }
func (c *boolColumn) zone() Zone     { return c.z }
func (c *boolColumn) memBytes() int  { return len(c.bits)*8 + len(c.nulls)*8 }

type boolCursor struct {
	c   *boolColumn
	row int
}

func (c *boolColumn) newCursor() cursor { return &boolCursor{c: c} }

func (cur *boolCursor) next(dst *Vector, n int) {
	out := dst.I64[:n]
	nul := dst.Null[:n]
	for i := 0; i < n; i++ {
		r := cur.row + i
		if deadBit(cur.c.bits, r) {
			out[i] = 1
		} else {
			out[i] = 0
		}
		nul[i] = deadBit(cur.c.nulls, r)
	}
	cur.row += n
}

// strColumn dictionary-encodes strings: distinct values live once in
// dict (first-appearance order) and rows store uint32 codes. Equality
// filters against a literal become integer compares after one dict
// probe per segment.
type strColumn struct {
	dict  []string
	codes []uint32
	nulls []uint64
	z     Zone
}

func (c *strColumn) kind() val.Kind { return val.KindString }
func (c *strColumn) zone() Zone     { return c.z }
func (c *strColumn) memBytes() int {
	n := len(c.codes)*4 + len(c.nulls)*8
	for _, s := range c.dict {
		n += len(s) + 16
	}
	return n
}

// code returns the dictionary code for s, or -1 if s is not in the
// segment. Used by filter kernels to turn string equality into code
// equality.
func (c *strColumn) code(s string) int {
	for i, d := range c.dict {
		if d == s {
			return i
		}
	}
	return -1
}

type strCursor struct {
	c   *strColumn
	row int
}

func (c *strColumn) newCursor() cursor { return &strCursor{c: c} }

func (cur *strCursor) next(dst *Vector, n int) {
	copy(dst.Code[:n], cur.c.codes[cur.row:cur.row+n])
	nul := dst.Null[:n]
	for i := 0; i < n; i++ {
		nul[i] = deadBit(cur.c.nulls, cur.row+i)
	}
	cur.row += n
}

// bytesColumn stores variable-length blobs back to back with an
// offsets array; decoded vectors hand out sub-slices without copying.
type bytesColumn struct {
	offs  []uint32 // len rows+1
	blob  []byte
	nulls []uint64
	z     Zone
}

func (c *bytesColumn) kind() val.Kind { return val.KindBytes }
func (c *bytesColumn) zone() Zone     { return c.z }
func (c *bytesColumn) memBytes() int  { return len(c.offs)*4 + len(c.blob) + len(c.nulls)*8 }

type bytesCursor struct {
	c   *bytesColumn
	row int
}

func (c *bytesColumn) newCursor() cursor { return &bytesCursor{c: c} }

func (cur *bytesCursor) next(dst *Vector, n int) {
	nul := dst.Null[:n]
	for i := 0; i < n; i++ {
		r := cur.row + i
		dst.Bytes[i] = cur.c.blob[cur.c.offs[r]:cur.c.offs[r+1]]
		nul[i] = deadBit(cur.c.nulls, r)
	}
	cur.row += n
}

// ---- zone-map pruning ----

// zoneExcludesEq reports whether the zone map proves no row of the
// column can equal v.
func zoneExcludesEq(z Zone, rows int, v val.Value) bool {
	if v.IsNull() {
		// field = NULL never matches any row (SQL), but that is the
		// filter's job; the zone map only prunes on values.
		return false
	}
	if z.Nulls == rows {
		return true // all null: no value can match
	}
	if !z.OK {
		return false
	}
	if c, err := val.Compare(v, z.Min); err == nil && c < 0 {
		return true
	}
	if c, err := val.Compare(v, z.Max); err == nil && c > 0 {
		return true
	}
	return false
}

// zoneExcludesRange reports whether the zone map proves no row can
// fall in [lo, hi] (either bound may be unbounded; open flags make a
// bound strict).
func zoneExcludesRange(z Zone, rows int, lo, hi val.Value, loOpen, hiOpen, loUnbounded, hiUnbounded bool) bool {
	if z.Nulls == rows {
		return true
	}
	if !z.OK {
		return false
	}
	if !loUnbounded && !lo.IsNull() {
		if c, err := val.Compare(z.Max, lo); err == nil && (c < 0 || (c == 0 && loOpen)) {
			return true
		}
	}
	if !hiUnbounded && !hi.IsNull() {
		if c, err := val.Compare(z.Min, hi); err == nil && (c > 0 || (c == 0 && hiOpen)) {
			return true
		}
	}
	return false
}

// isNaN reports whether v is a floating NaN (which defeats min/max
// ordering and therefore poisons a zone map).
func isNaN(v val.Value) bool {
	if v.Kind() != val.KindFloat {
		return false
	}
	f, _ := v.AsFloat()
	return math.IsNaN(f)
}
