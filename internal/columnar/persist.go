package columnar

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"eventdb/internal/storage"
	"eventdb/internal/val"
	"eventdb/internal/vfs"
)

// readFile is os.ReadFile through a vfs.FS.
func readFile(fsys vfs.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Segment files make restart cheap: instead of re-mining the whole
// WAL into pending rows and re-sealing, Attach reloads sealed history
// directly. The file carries the raw row values (ids, LSNs, and each
// value in the WAL's binary value encoding) plus a whole-file CRC;
// loading rebuilds the column encodings in memory via buildSegment,
// so the on-disk format can never drift from the in-memory one. A
// file that fails any check — magic, CRC, schema fingerprint, LSN/ID
// contiguity — is deleted and its rows are rebuilt from the WAL by
// the normal bootstrap path. The WAL stays the source of truth;
// segment files are a cache.

const segMagic = "EDBSEG1\n"

func segFileName(table string, firstLSN uint64) string {
	// Hex-encode the table name so arbitrary names are filesystem-safe.
	return fmt.Sprintf("%x-%016x.seg", table, firstLSN)
}

// encodeSegmentFile serializes a sealed segment. Layout:
//
//	magic | table | ncols (name, kind)* | nrows | id deltas |
//	lsn deltas | row values | crc32(everything before)
func encodeSegmentFile(seg *Segment) ([]byte, error) {
	buf := []byte(segMagic)
	buf = appendStr(buf, seg.table)
	buf = binary.AppendUvarint(buf, uint64(len(seg.schema.Columns)))
	for _, c := range seg.schema.Columns {
		buf = appendStr(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	buf = binary.AppendUvarint(buf, uint64(seg.rows))
	var prevID, prevLSN uint64
	for _, id := range seg.ids {
		buf = binary.AppendUvarint(buf, uint64(id)-prevID)
		prevID = uint64(id)
	}
	for _, lsn := range seg.lsns {
		buf = binary.AppendUvarint(buf, lsn-prevLSN)
		prevLSN = lsn
	}
	// Row values, decoded back out of the columns. One reusable row
	// buffer: AppendBinary copies what it needs.
	r := seg.NewReader(nil)
	var b Batch
	row := make(storage.Row, len(seg.schema.Columns))
	for r.Next(&b) {
		for i := 0; i < b.Len; i++ {
			b.MaterializeRow(row, i)
			for _, v := range row {
				buf = val.AppendBinary(buf, v)
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

type segDecodeError struct{ msg string }

func (e *segDecodeError) Error() string { return "columnar: segment file: " + e.msg }

func badSeg(format string, args ...any) error {
	return &segDecodeError{msg: fmt.Sprintf(format, args...)}
}

// decodeSegmentFile parses and validates a segment file, returning
// the raw rows for rebuild. The schema fingerprint (column names and
// kinds, in order) must match the live schema exactly.
func decodeSegmentFile(data []byte, schema *storage.Schema) (table string, ids []storage.RowID, lsns []uint64, rows []storage.Row, err error) {
	if len(data) < len(segMagic)+4 || string(data[:len(segMagic)]) != segMagic {
		return "", nil, nil, nil, badSeg("bad magic")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return "", nil, nil, nil, badSeg("crc mismatch")
	}
	pos := len(segMagic)
	table, pos, err = readStr(body, pos)
	if err != nil {
		return "", nil, nil, nil, err
	}
	ncols, pos, err := readUvarint(body, pos)
	if err != nil {
		return "", nil, nil, nil, err
	}
	if schema != nil && ncols != uint64(len(schema.Columns)) {
		return "", nil, nil, nil, badSeg("schema drift: %d columns, want %d", ncols, len(schema.Columns))
	}
	for i := uint64(0); i < ncols; i++ {
		var name string
		name, pos, err = readStr(body, pos)
		if err != nil {
			return "", nil, nil, nil, err
		}
		if pos >= len(body) {
			return "", nil, nil, nil, badSeg("truncated column kinds")
		}
		kind := val.Kind(body[pos])
		pos++
		if schema != nil && (schema.Columns[i].Name != name || schema.Columns[i].Kind != kind) {
			return "", nil, nil, nil, badSeg("schema drift on column %d (%s %s)", i, name, kind)
		}
	}
	nrows, pos, err := readUvarint(body, pos)
	if err != nil {
		return "", nil, nil, nil, err
	}
	if nrows == 0 || nrows > uint64(len(body)) {
		return "", nil, nil, nil, badSeg("implausible row count %d", nrows)
	}
	ids = make([]storage.RowID, nrows)
	var prev uint64
	for i := range ids {
		var d uint64
		d, pos, err = readUvarint(body, pos)
		if err != nil {
			return "", nil, nil, nil, err
		}
		prev += d
		ids[i] = storage.RowID(prev)
	}
	lsns = make([]uint64, nrows)
	prev = 0
	for i := range lsns {
		var d uint64
		d, pos, err = readUvarint(body, pos)
		if err != nil {
			return "", nil, nil, nil, err
		}
		prev += d
		lsns[i] = prev
	}
	rows = make([]storage.Row, nrows)
	for i := range rows {
		row := make(storage.Row, ncols)
		for c := uint64(0); c < ncols; c++ {
			v, n, verr := val.DecodeBinary(body[pos:])
			if verr != nil {
				return "", nil, nil, nil, badSeg("row %d: %v", i, verr)
			}
			row[c] = v
			pos += n
		}
		rows[i] = row
	}
	if pos != len(body) {
		return "", nil, nil, nil, badSeg("%d trailing bytes", len(body)-pos)
	}
	return table, ids, lsns, rows, nil
}

func readStr(buf []byte, pos int) (string, int, error) {
	n, pos, err := readUvarint(buf, pos)
	if err != nil {
		return "", 0, err
	}
	if uint64(len(buf)-pos) < n {
		return "", 0, badSeg("short string")
	}
	return string(buf[pos : pos+int(n)]), pos + int(n), nil
}

func readUvarint(buf []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, 0, badSeg("bad varint")
	}
	return v, pos + n, nil
}

// persistSegment writes a sealed segment to disk: temp file, fsync,
// atomic rename. A crash at any point leaves either no file or a
// complete one; partial temp files fail the CRC or magic check and
// are deleted at the next load.
func (m *Manager) persistSegment(seg *Segment) error {
	data, err := encodeSegmentFile(seg)
	if err != nil {
		return err
	}
	final := filepath.Join(m.cfg.Dir, segFileName(seg.table, seg.firstLSN))
	tmp := final + ".tmp"
	fsys := m.cfg.FS
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, final)
}

// loadSegments reloads persisted segments at attach time. Invalid
// files (partial writes, CRC mismatches, schema drift) and any file
// breaking per-table LSN/ID contiguity are deleted; their rows come
// back through the WAL bootstrap instead.
func (m *Manager) loadSegments() error {
	fsys := m.cfg.FS
	if err := fsys.MkdirAll(m.cfg.Dir, 0o755); err != nil {
		return err
	}
	entries, err := fsys.ReadDir(m.cfg.Dir)
	if err != nil {
		return err
	}
	type loaded struct {
		path string
		seg  *Segment
	}
	byTable := make(map[string][]loaded)
	var firstErr error
	drop := func(path string, err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
		fsys.Remove(path)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") && !strings.HasSuffix(name, ".seg.tmp") {
			continue
		}
		path := filepath.Join(m.cfg.Dir, name)
		if strings.HasSuffix(name, ".seg.tmp") {
			// Leftover from a crash mid-write.
			drop(path, nil)
			continue
		}
		data, err := readFile(fsys, path)
		if err != nil {
			drop(path, err)
			continue
		}
		// First pass: peek at the table name with no schema check so
		// we can look the schema up, then decode for real.
		table, _, _, _, err := decodeSegmentFile(data, nil)
		if err != nil {
			drop(path, err)
			continue
		}
		tbl, ok := m.db.Table(table)
		if !ok {
			drop(path, badSeg("unknown table %q", table))
			continue
		}
		schema := tbl.Schema()
		_, ids, lsns, rows, err := decodeSegmentFile(data, schema)
		if err != nil {
			drop(path, err)
			continue
		}
		seg, err := buildSegment(table, schema, ids, lsns, rows)
		if err != nil {
			drop(path, err)
			continue
		}
		byTable[table] = append(byTable[table], loaded{path: path, seg: seg})
	}
	for table, segs := range byTable {
		sort.Slice(segs, func(a, b int) bool { return segs[a].seg.firstLSN < segs[b].seg.firstLSN })
		st := m.store(table)
		if st == nil {
			continue
		}
		st.mu.Lock()
		var lastID storage.RowID
		var lastLSN uint64
		for i, l := range segs {
			seg := l.seg
			if seg.ids[0] <= lastID || (i > 0 && seg.firstLSN <= lastLSN) {
				// Contiguity broken: drop this and everything after;
				// the WAL bootstrap recovers the rows.
				for _, rest := range segs[i:] {
					drop(rest.path, badSeg("non-contiguous segment %s", rest.path))
				}
				break
			}
			st.segs = append(st.segs, seg)
			st.maxSealedID = seg.ids[seg.rows-1]
			if seg.lastLSN > st.maxSealedLSN {
				st.maxSealedLSN = seg.lastLSN
			}
			if seg.lastLSN > st.maxGrp {
				st.maxGrp = seg.lastLSN
			}
			st.sealedTotal++
			lastID = seg.ids[seg.rows-1]
			lastLSN = seg.lastLSN
		}
		st.mu.Unlock()
	}
	return firstErr
}
