package journal

import (
	"testing"
	"time"

	"eventdb/internal/event"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

func durableDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.Open(storage.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema, _ := storage.NewSchema("acct", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "balance", Kind: val.KindFloat, NotNull: true},
	}, "id")
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	other, _ := storage.NewSchema("other", []storage.Column{
		{Name: "x", Kind: val.KindInt},
	})
	db.CreateTable(other)
	return db
}

func TestMineFullLog(t *testing.T) {
	db := durableDB(t)
	id, _ := db.Insert("acct", map[string]val.Value{"id": val.Int(1), "balance": val.Float(100)})
	db.UpdateRow("acct", id, map[string]val.Value{"balance": val.Float(50)})
	db.DeleteRow("acct", id)
	db.Insert("other", map[string]val.Value{"x": val.Int(9)})

	m := NewMiner(db)
	var evs []*event.Event
	next, err := m.Mine(0, Filter{}, func(ev *event.Event) error {
		evs = append(evs, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("mined %d events, want 4", len(evs))
	}
	if evs[0].Type != "journal.acct.insert" || evs[2].Type != "journal.acct.delete" {
		t.Errorf("types = %q %q", evs[0].Type, evs[2].Type)
	}
	// Update event carries both images.
	if v, _ := evs[1].Get("old_balance"); !val.Equal(v, val.Float(100)) {
		t.Errorf("old_balance = %v", v)
	}
	if v, _ := evs[1].Get("new_balance"); !val.Equal(v, val.Float(50)) {
		t.Errorf("new_balance = %v", v)
	}
	// LSN attribute present and increasing.
	l0, _ := evs[0].Get("lsn")
	l1, _ := evs[1].Get("lsn")
	n0, _ := l0.AsInt()
	n1, _ := l1.AsInt()
	if n0 <= 0 || n1 <= n0 {
		t.Errorf("lsn sequence wrong: %d then %d", n0, n1)
	}
	// Resume: mining from `next` yields nothing new.
	count := 0
	if _, err := m.Mine(next, Filter{}, func(*event.Event) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("resume re-mined %d events", count)
	}
	// Incremental: a new commit is picked up from `next`.
	db.Insert("acct", map[string]val.Value{"id": val.Int(2), "balance": val.Float(1)})
	if _, err := m.Mine(next, Filter{}, func(*event.Event) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("incremental mine = %d events, want 1", count)
	}
}

func TestMineFilters(t *testing.T) {
	db := durableDB(t)
	id, _ := db.Insert("acct", map[string]val.Value{"id": val.Int(1), "balance": val.Float(1)})
	db.UpdateRow("acct", id, map[string]val.Value{"balance": val.Float(2)})
	db.Insert("other", map[string]val.Value{"x": val.Int(1)})

	m := NewMiner(db)
	count := 0
	m.Mine(0, Filter{Tables: []string{"acct"}, Ops: []storage.ChangeKind{storage.Update}},
		func(ev *event.Event) error { count++; return nil })
	if count != 1 {
		t.Errorf("filtered mine = %d, want 1", count)
	}
}

func TestMineVolatileFails(t *testing.T) {
	db, _ := storage.Open(storage.Options{})
	defer db.Close()
	m := NewMiner(db)
	if _, err := m.Mine(0, Filter{}, func(*event.Event) error { return nil }); err != ErrNotDurable {
		t.Errorf("Mine on volatile db: %v", err)
	}
}

func TestMineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := storage.NewSchema("acct", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "balance", Kind: val.KindFloat, NotNull: true},
	}, "id")
	db.CreateTable(schema)
	db.Insert("acct", map[string]val.Value{"id": val.Int(1), "balance": val.Float(10)})
	db.Close()

	// Mining after restart sees the pre-restart history — the defining
	// property of journal capture (nothing was lost with the process).
	db2, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	count := 0
	if _, err := NewMiner(db2).Mine(0, Filter{}, func(*event.Event) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("post-restart mine = %d, want 1", count)
	}
}

func TestTailLiveCapture(t *testing.T) {
	db := durableDB(t)
	m := NewMiner(db)
	sub := m.Tail(Filter{Tables: []string{"acct"}}, 16)
	defer sub.Cancel()

	db.Insert("acct", map[string]val.Value{"id": val.Int(1), "balance": val.Float(10)})
	db.Insert("other", map[string]val.Value{"x": val.Int(1)}) // filtered out
	db.Insert("acct", map[string]val.Value{"id": val.Int(2), "balance": val.Float(20)})

	var got []*event.Event
	timeout := time.After(2 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-sub.C:
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timed out with %d events", len(got))
		}
	}
	if got[0].Type != "journal.acct.insert" {
		t.Errorf("tail event type = %q", got[0].Type)
	}
	if v, _ := got[1].Get("new_id"); !val.Equal(v, val.Int(2)) {
		t.Errorf("second event new_id = %v", v)
	}
	if sub.Overflow() != 0 {
		t.Errorf("overflow = %d", sub.Overflow())
	}
}

func TestTailOverflowCounts(t *testing.T) {
	db := durableDB(t)
	m := NewMiner(db)
	sub := m.Tail(Filter{}, 1) // tiny buffer, no consumer
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		db.Insert("acct", map[string]val.Value{"id": val.Int(int64(i)), "balance": val.Float(1)})
	}
	if sub.Overflow() != 4 {
		t.Errorf("overflow = %d, want 4", sub.Overflow())
	}
}

func TestTailCancelStops(t *testing.T) {
	db := durableDB(t)
	m := NewMiner(db)
	sub := m.Tail(Filter{}, 4)
	sub.Cancel()
	sub.Cancel() // idempotent
	db.Insert("acct", map[string]val.Value{"id": val.Int(1), "balance": val.Float(1)})
	// Channel is closed; no event should arrive.
	if ev, ok := <-sub.C; ok {
		t.Errorf("received %v after cancel", ev)
	}
}

func TestTailWorksOnVolatileDB(t *testing.T) {
	db, _ := storage.Open(storage.Options{})
	defer db.Close()
	schema, _ := storage.NewSchema("t", []storage.Column{{Name: "x", Kind: val.KindInt}})
	db.CreateTable(schema)
	m := NewMiner(db)
	sub := m.Tail(Filter{}, 4)
	defer sub.Cancel()
	db.Insert("t", map[string]val.Value{"x": val.Int(1)})
	select {
	case ev := <-sub.C:
		if v, _ := ev.Get("lsn"); !val.Equal(v, val.Int(0)) {
			t.Errorf("volatile tail lsn = %v, want 0", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event from volatile tail")
	}
}
