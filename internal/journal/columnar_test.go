package journal

import (
	"fmt"
	"testing"
	"time"

	"eventdb/internal/columnar"
	"eventdb/internal/storage"
	"eventdb/internal/val"
)

// minedInserts drains MineChanges with a single-table insert-only
// filter into a comparable trace: one line per change plus the
// returned next-LSN.
func minedInserts(t *testing.T, m *Miner, table string, fromLSN uint64) []string {
	t.Helper()
	var out []string
	next, err := m.MineChanges(fromLSN, Filter{Tables: []string{table}, Ops: []storage.ChangeKind{storage.Insert}},
		func(lsn uint64, c *storage.Change) error {
			out = append(out, fmt.Sprintf("lsn=%d table=%s id=%d new=%v", lsn, c.Table, c.ID, c.New))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return append(out, fmt.Sprintf("next=%d", next))
}

// TestMineInsertsSegmentEquivalence pins the segment-backed fast path
// of MineChanges to the WAL replay it replaces: the same database is
// mined before any columnar manager exists (pure WAL) and again after
// sealing its history into segments; the traces must be identical,
// from LSN zero and from a mid-stream resume point.
func TestMineInsertsSegmentEquivalence(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema, _ := storage.NewSchema("acct", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "balance", Kind: val.KindFloat},
	}, "id")
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}

	// History with texture: single inserts, one multi-insert commit,
	// and interleaved updates/deletes that the insert filter must skip
	// on both paths.
	var ids []storage.RowID
	for i := 0; i < 40; i++ {
		id, err := db.Insert("acct", map[string]val.Value{"id": val.Int(int64(i)), "balance": val.Float(float64(i) * 2)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if i%7 == 3 {
			db.UpdateRow("acct", ids[i/2], map[string]val.Value{"balance": val.Float(-1)})
		}
		if i%11 == 10 {
			db.DeleteRow("acct", ids[i-5])
		}
	}
	txn := db.Begin()
	for i := 100; i < 130; i++ {
		if err := txn.Insert("acct", map[string]val.Value{"id": val.Int(int64(i)), "balance": val.Float(0.5)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	miner := NewMiner(db)
	baselineAll := minedInserts(t, miner, "acct", 0)
	resume := uint64(25)
	baselineMid := minedInserts(t, miner, "acct", resume)

	cm, err := columnar.Attach(db, columnar.Config{SealRows: 64, SealInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	if _, err := cm.Compact(""); err != nil {
		t.Fatal(err)
	}
	var sealed int
	for _, s := range cm.Stats() {
		sealed += s.SealedRows
	}
	if sealed == 0 {
		t.Fatal("no rows sealed; the fast path is not being exercised")
	}
	// A row-store tail after sealing: mined from the WAL on both paths.
	if _, err := db.Insert("acct", map[string]val.Value{"id": val.Int(999), "balance": val.Float(9)}); err != nil {
		t.Fatal(err)
	}
	tailAll := minedInserts(t, NewMiner(db), "acct", 0)
	tailMid := minedInserts(t, NewMiner(db), "acct", resume)

	// The baselines predate the tail insert: compare prefixes, then
	// check the tail rows and final cursor agree with a fresh WAL-only
	// mine of the same span.
	checkPrefix := func(label string, baseline, got []string) {
		t.Helper()
		if len(got) < len(baseline) {
			t.Fatalf("%s: got %d entries, want at least %d", label, len(got), len(baseline))
		}
		for i := range baseline[:len(baseline)-1] { // last entry is the cursor
			if got[i] != baseline[i] {
				t.Fatalf("%s: entry %d:\n  segment path: %s\n  wal path:     %s", label, i, got[i], baseline[i])
			}
		}
	}
	checkPrefix("from-zero", baselineAll, tailAll)
	checkPrefix("mid-resume", baselineMid, tailMid)
	if tailAll[len(tailAll)-1] != tailMid[len(tailMid)-1] {
		t.Fatalf("cursors diverge: %s vs %s", tailAll[len(tailAll)-1], tailMid[len(tailMid)-1])
	}
}

// TestMineInsertsResumeInsideSegment resumes mining from an LSN that
// lands strictly inside a sealed segment's range; only inserts at or
// after that LSN may be emitted.
func TestMineInsertsResumeInsideSegment(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema, _ := storage.NewSchema("acct", []storage.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
	}, "id")
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := db.Insert("acct", map[string]val.Value{"id": val.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	baseline := minedInserts(t, NewMiner(db), "acct", 40)

	cm, err := columnar.Attach(db, columnar.Config{SealRows: 64, SealInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	if _, err := cm.Compact(""); err != nil {
		t.Fatal(err)
	}
	got := minedInserts(t, NewMiner(db), "acct", 40)
	if len(got) != len(baseline) {
		t.Fatalf("got %d entries, want %d", len(got), len(baseline))
	}
	for i := range baseline {
		if got[i] != baseline[i] {
			t.Fatalf("entry %d:\n  segment path: %s\n  wal path:     %s", i, got[i], baseline[i])
		}
	}
}
