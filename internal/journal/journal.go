// Package journal implements redo-log mining, the second of the paper's
// capture mechanisms (§2.2.a.ii "capturing events using journals"). It
// is the analogue of commercial log-mining tools: committed changes are
// read from the write-ahead log — decoupled from the transaction path —
// and converted to events.
//
// Two modes are offered:
//
//   - Mine: batch-replay a LSN range from the persisted WAL, e.g. for
//     catch-up after downtime or retrospective analysis.
//   - Tail: live capture; an in-process commit hook streams changes as
//     they commit, after an initial catch-up pass over the WAL.
package journal

import (
	"errors"
	"fmt"
	"sync"

	"eventdb/internal/columnar"
	"eventdb/internal/event"
	"eventdb/internal/storage"
	"eventdb/internal/trigger"
	"eventdb/internal/val"
	"eventdb/internal/wal"
)

// eventLSN renders an LSN as an event attribute value.
func eventLSN(lsn uint64) val.Value { return val.Int(int64(lsn)) }

// Filter restricts which changes are mined. Zero value passes everything.
type Filter struct {
	// Tables restricts capture to these tables (nil = all).
	Tables []string
	// Ops restricts capture to these change kinds (nil = all).
	Ops []storage.ChangeKind
}

func (f Filter) compile() func(*storage.Change) bool {
	var tables map[string]bool
	if len(f.Tables) > 0 {
		tables = make(map[string]bool, len(f.Tables))
		for _, t := range f.Tables {
			tables[t] = true
		}
	}
	var ops map[storage.ChangeKind]bool
	if len(f.Ops) > 0 {
		ops = make(map[storage.ChangeKind]bool, len(f.Ops))
		for _, o := range f.Ops {
			ops[o] = true
		}
	}
	return func(c *storage.Change) bool {
		if tables != nil && !tables[c.Table] {
			return false
		}
		if ops != nil && !ops[c.Kind] {
			return false
		}
		return true
	}
}

// Miner converts committed changes into events.
type Miner struct {
	db *storage.DB
}

// NewMiner creates a miner over a database. Batch mining requires the
// database to be durable (WAL-backed); live tailing works either way.
func NewMiner(db *storage.DB) *Miner { return &Miner{db: db} }

// ErrNotDurable is returned by Mine on a volatile database.
var ErrNotDurable = errors.New("journal: database has no WAL to mine")

// Mine replays committed changes with LSN >= fromLSN from the WAL,
// invoking fn for each matching change event. It returns the next LSN to
// resume from.
func (m *Miner) Mine(fromLSN uint64, f Filter, fn func(*event.Event) error) (nextLSN uint64, err error) {
	return m.MineChanges(fromLSN, f, func(lsn uint64, c *storage.Change) error {
		tbl, ok := m.db.Table(c.Table)
		if !ok {
			return nil // table dropped or filtered during recovery
		}
		ev := trigger.ChangeToEvent(tbl.Schema(), c, "journal")
		ev.Attrs["lsn"] = eventLSN(lsn)
		return fn(ev)
	})
}

// MineChanges is Mine at change granularity: matching committed changes
// are handed to fn raw, without conversion to events, so callers that
// know the table's shape (e.g. queue-payload backfill) can decode row
// values directly instead of going through attribute maps. Changes to
// tables that no longer exist are still delivered — the WAL remembers
// them even if the schema registry does not.
//
// When the mined shape is one table's inserts and the database has a
// columnar store attached, the sealed prefix of the history is served
// from segments (no WAL decode, no per-record filtering) and only the
// unsealed tail replays from the WAL. Output is identical either way:
// the same inserts, in LSN order.
func (m *Miner) MineChanges(fromLSN uint64, f Filter, fn func(lsn uint64, c *storage.Change) error) (nextLSN uint64, err error) {
	log := m.db.WAL()
	if log == nil {
		return 0, ErrNotDurable
	}
	pass := f.compile()
	nextLSN = fromLSN
	if len(f.Tables) == 1 && len(f.Ops) == 1 && f.Ops[0] == storage.Insert {
		if cm := columnar.Of(m.db); cm != nil {
			next, err := cm.MineInserts(f.Tables[0], fromLSN, fn)
			if err != nil {
				return next, err
			}
			if next > fromLSN {
				fromLSN = next
				nextLSN = next
			}
		}
	}
	err = log.Replay(fromLSN, func(r wal.Record) error {
		nextLSN = r.LSN + 1
		changes, ok, err := storage.DecodeCommitRecord(r)
		if err != nil {
			return fmt.Errorf("journal: lsn %d: %w", r.LSN, err)
		}
		if !ok {
			return nil // DDL or foreign record
		}
		for i := range changes {
			c := &changes[i]
			if !pass(c) {
				continue
			}
			if err := fn(r.LSN, c); err != nil {
				return err
			}
		}
		return nil
	})
	return nextLSN, err
}

// Subscription is a live change feed.
type Subscription struct {
	// C delivers change events in commit order.
	C <-chan *event.Event

	cancel   func()
	mu       sync.Mutex
	overflow uint64
	closed   bool
}

// Overflow reports how many events were dropped because the subscriber
// fell behind (buffer full). Zero in healthy operation.
func (s *Subscription) Overflow() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflow
}

// Cancel detaches the subscription and closes C.
func (s *Subscription) Cancel() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
}

// Tail starts live capture: commits that happen after the call are
// streamed to the returned subscription's channel. buffer bounds the
// channel; when full, events are dropped and counted in Overflow (a
// real deployment would back-pressure; counting keeps tests honest).
func (m *Miner) Tail(f Filter, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 1024
	}
	ch := make(chan *event.Event, buffer)
	sub := &Subscription{C: ch}
	pass := f.compile()
	remove := m.db.OnCommit(func(ci *storage.CommitInfo) {
		sub.mu.Lock()
		if sub.closed {
			sub.mu.Unlock()
			return
		}
		for i := range ci.Changes {
			c := &ci.Changes[i]
			if !pass(c) {
				continue
			}
			tbl, ok := m.db.Table(c.Table)
			if !ok {
				continue
			}
			ev := trigger.ChangeToEvent(tbl.Schema(), c, "journal")
			ev.Attrs["lsn"] = eventLSN(ci.LSN)
			select {
			case ch <- ev:
			default:
				sub.overflow++
			}
		}
		sub.mu.Unlock()
	})
	sub.cancel = func() {
		remove()
		close(ch)
	}
	return sub
}
