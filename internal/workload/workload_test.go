package workload

import (
	"math"
	"testing"

	"eventdb/internal/val"
)

func TestTradesDeterministic(t *testing.T) {
	g1 := NewTrades(42, 10, 100)
	g2 := NewTrades(42, 10, 100)
	for i := 0; i < 100; i++ {
		e1, e2 := g1.Next(), g2.Next()
		p1, _ := e1.Get("price")
		p2, _ := e2.Get("price")
		s1, _ := e1.Get("sym")
		s2, _ := e2.Get("sym")
		if !val.Equal(p1, p2) || !val.Equal(s1, s2) {
			t.Fatalf("step %d: generators diverged", i)
		}
	}
	if len(g1.Symbols()) != 10 {
		t.Errorf("symbols = %d", len(g1.Symbols()))
	}
}

func TestTradesShape(t *testing.T) {
	g := NewTrades(1, 5, 100)
	prev := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ev := g.Next()
		if ev.Type != "trade" {
			t.Fatalf("type = %q", ev.Type)
		}
		p, _ := ev.Get("price")
		f, ok := p.AsFloat()
		if !ok || f <= 0 {
			t.Fatalf("price = %v", p)
		}
		s, _ := ev.Get("sym")
		sym, _ := s.AsString()
		prev[sym] = true
	}
	if len(prev) != 5 {
		t.Errorf("symbols seen = %d", len(prev))
	}
}

func TestMetersAnomalyRate(t *testing.T) {
	g := NewMeters(7, 20)
	g.AnomalyRate = 0.05
	anomalies, total := 0, 5000
	var anomSum, normSum float64
	var normN int
	for i := 0; i < total; i++ {
		r := g.Next()
		if r.Anomaly {
			anomalies++
			anomSum += r.Value
		} else {
			normSum += r.Value
			normN++
		}
		if r.Event.Type != "meter.reading" {
			t.Fatalf("type = %q", r.Event.Type)
		}
	}
	rate := float64(anomalies) / float64(total)
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("anomaly rate = %v, want ≈0.05", rate)
	}
	// Anomalies are elevated on average (they multiply the base load).
	if anomalies > 0 && anomSum/float64(anomalies) < 1.5*normSum/float64(normN) {
		t.Errorf("anomalous mean %v not elevated over normal mean %v",
			anomSum/float64(anomalies), normSum/float64(normN))
	}
	_ = math.Pi // keep math import for the seasonal test below
}

func TestMetersSeasonalShape(t *testing.T) {
	g := NewMeters(3, 1)
	g.AnomalyRate = 0
	var night, evening float64
	var nN, eN int
	for i := 0; i < 4*24*30; i++ { // 30 days of 15-minute readings
		r := g.Next()
		h := r.Event.Time.Hour()
		switch {
		case h >= 2 && h < 4:
			night += r.Value
			nN++
		case h >= 17 && h < 19:
			evening += r.Value
			eN++
		}
	}
	if evening/float64(eN) <= night/float64(nN) {
		t.Errorf("no seasonal shape: evening %v vs night %v",
			evening/float64(eN), night/float64(nN))
	}
}

func TestSensorsBursts(t *testing.T) {
	g := NewSensors(5, 8)
	g.BurstRate = 0.01
	burstEvents := 0
	siteLevels := map[string][]float64{}
	for i := 0; i < 5000; i++ {
		ev, inBurst := g.Next()
		if inBurst {
			burstEvents++
			lv, _ := ev.Get("level")
			f, _ := lv.AsFloat()
			if f < 8 {
				t.Errorf("burst level %v below hazard threshold", f)
			}
		}
		s, _ := ev.Get("site")
		site, _ := s.AsString()
		lv, _ := ev.Get("level")
		f, _ := lv.AsFloat()
		siteLevels[site] = append(siteLevels[site], f)
	}
	if burstEvents == 0 {
		t.Error("no bursts generated")
	}
	if len(siteLevels) != 8 {
		t.Errorf("sites seen = %d", len(siteLevels))
	}
	// Time must be monotonically nondecreasing.
	g2 := NewSensors(5, 3)
	prev, _ := g2.Next()
	for i := 0; i < 100; i++ {
		ev, _ := g2.Next()
		if ev.Time.Before(prev.Time) {
			t.Fatal("time went backwards")
		}
		prev = ev
	}
}
