// Package workload generates the synthetic event streams used by the
// examples and the experiment harness. The paper's evaluation relies on
// production feeds (market data, utility meters, hazmat RFID, sensor
// grids) that a reproduction cannot obtain; these generators reproduce
// the statistical shape each use case needs — trending prices, seasonal
// loads with injected anomalies, bursty sensor traffic — deterministically
// from a seed, so experiments are repeatable.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"eventdb/internal/event"
)

// Trades generates a random-walk market feed (the financial-services
// use case).
type Trades struct {
	rng     *rand.Rand
	symbols []string
	prices  []float64
	t       time.Time
	step    time.Duration
}

// NewTrades creates a generator over nSymbols starting at basePrice.
func NewTrades(seed int64, nSymbols int, basePrice float64) *Trades {
	rng := rand.New(rand.NewSource(seed))
	g := &Trades{
		rng:  rng,
		t:    time.Date(2026, 6, 10, 9, 30, 0, 0, time.UTC),
		step: 100 * time.Millisecond,
	}
	for i := 0; i < nSymbols; i++ {
		g.symbols = append(g.symbols, fmt.Sprintf("SYM%03d", i))
		g.prices = append(g.prices, basePrice*(0.5+rng.Float64()))
	}
	return g
}

// Next returns the next trade event.
func (g *Trades) Next() *event.Event {
	i := g.rng.Intn(len(g.symbols))
	g.prices[i] *= 1 + g.rng.NormFloat64()*0.002
	if g.prices[i] < 0.01 {
		g.prices[i] = 0.01
	}
	g.t = g.t.Add(g.step)
	ev := event.New("trade", map[string]any{
		"sym":   g.symbols[i],
		"price": math.Round(g.prices[i]*100) / 100,
		"qty":   int64(1+g.rng.Intn(10)) * 100,
		"venue": []string{"NYSE", "NASDAQ", "ARCA"}[g.rng.Intn(3)],
	})
	ev.Time = g.t
	ev.Source = "feed/market"
	return ev
}

// Symbols returns the generated symbol universe.
func (g *Trades) Symbols() []string { return g.symbols }

// MeterReading is one generated utility observation with its ground
// truth label.
type MeterReading struct {
	Event   *event.Event
	Value   float64
	Anomaly bool
}

// Meters generates seasonal utility load with injected anomalies (the
// utilities use case): a daily sine profile plus noise; each reading is
// anomalous with AnomalyRate probability, multiplying the load.
type Meters struct {
	rng         *rand.Rand
	nMeters     int
	t           time.Time
	step        time.Duration
	AnomalyRate float64
	AnomalyMult float64
}

// NewMeters creates a meter-fleet generator.
func NewMeters(seed int64, nMeters int) *Meters {
	return &Meters{
		rng:         rand.New(rand.NewSource(seed)),
		nMeters:     nMeters,
		t:           time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
		step:        15 * time.Minute,
		AnomalyRate: 0.005,
		AnomalyMult: 3.0,
	}
}

// Next returns the next reading, round-robin across meters.
func (g *Meters) Next() MeterReading {
	meter := int(g.t.UnixNano()/int64(g.step)) % g.nMeters
	hour := float64(g.t.Hour()) + float64(g.t.Minute())/60
	base := 10 + 8*math.Sin((hour-6)/24*2*math.Pi)
	v := base + g.rng.NormFloat64()*0.5
	anomaly := g.rng.Float64() < g.AnomalyRate
	if anomaly {
		v *= g.AnomalyMult
	}
	ev := event.New("meter.reading", map[string]any{
		"meter": fmt.Sprintf("MTR%04d", meter),
		"kwh":   math.Round(v*100) / 100,
	})
	ev.Time = g.t
	ev.Source = "feed/meters"
	g.t = g.t.Add(g.step)
	return MeterReading{Event: ev, Value: v, Anomaly: anomaly}
}

// Sensors generates bursty multi-sensor traffic (the SensorNet /
// ChemSecure use cases): mostly routine readings, with occasional
// bursts of elevated hazard levels at one site.
type Sensors struct {
	rng       *rand.Rand
	sites     []string
	t         time.Time
	burstLeft int
	burstSite int
	BurstRate float64
}

// NewSensors creates a generator over nSites.
func NewSensors(seed int64, nSites int) *Sensors {
	rng := rand.New(rand.NewSource(seed))
	g := &Sensors{
		rng:       rng,
		t:         time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC),
		BurstRate: 0.002,
	}
	for i := 0; i < nSites; i++ {
		g.sites = append(g.sites, fmt.Sprintf("site-%02d", i))
	}
	return g
}

// Next returns the next sensor event; InBurst reports whether it is
// part of a hazard burst.
func (g *Sensors) Next() (ev *event.Event, inBurst bool) {
	g.t = g.t.Add(time.Duration(50+g.rng.Intn(200)) * time.Millisecond)
	site := g.rng.Intn(len(g.sites))
	level := math.Abs(g.rng.NormFloat64()) // routine background
	if g.burstLeft > 0 {
		site = g.burstSite
		level = 8 + g.rng.Float64()*4
		g.burstLeft--
		inBurst = true
	} else if g.rng.Float64() < g.BurstRate {
		g.burstSite = site
		g.burstLeft = 10 + g.rng.Intn(20)
		level = 8 + g.rng.Float64()*4
		inBurst = true
	}
	ev = event.New("sensor.reading", map[string]any{
		"site":    g.sites[site],
		"kind":    []string{"chem", "rad", "bio"}[g.rng.Intn(3)],
		"level":   math.Round(level*100) / 100,
		"battery": 20 + g.rng.Intn(80),
	})
	ev.Time = g.t
	ev.Source = "feed/sensors"
	return ev, inBurst
}
