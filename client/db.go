package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"eventdb/internal/wiredb"
)

// The database verbs: the client half of the paper's §2.2.a claim that
// events are captured from database state. CreateTable declares
// schema, Insert/Update/Delete mutate rows through the server's
// storage engine (so BEFORE triggers can veto and AFTER triggers
// capture change events that fan out to every subscriber), Select runs
// one-shot reads through the query planner, Trigger/DropTrigger manage
// the triggers themselves, and Watch/Unwatch schedule server-side
// repeatedly-evaluated queries whose result-set diffs arrive as
// "query.<name>.<added|removed|changed>" events on any matching
// subscription.

// TableSpec declares a table for CreateTable.
type TableSpec = wiredb.TableSpec

// ColumnSpec declares one column of a TableSpec.
type ColumnSpec = wiredb.ColumnSpec

// QuerySpec declares a one-shot Select or the query half of a
// WatchSpec.
type QuerySpec = wiredb.QuerySpec

// AggSpec is one aggregate output of a QuerySpec.
type AggSpec = wiredb.AggSpec

// OrderSpec is one sort key of a QuerySpec.
type OrderSpec = wiredb.OrderSpec

// JoinSpec is the join clause of a QuerySpec.
type JoinSpec = wiredb.JoinSpec

// TriggerSpec declares a trigger for Trigger.
type TriggerSpec = wiredb.TriggerSpec

// WatchSpec declares a watched query for Watch.
type WatchSpec = wiredb.WatchSpec

// Result is a materialized Select result. Values are JSON scalars with
// integral numbers folded to int64; times arrive as RFC 3339 strings
// and bytes base64, as encoded by the wire.
type Result = wiredb.Result

// checkName rejects tokens that would break line framing.
func checkName(kind, name string) error {
	if name == "" || strings.ContainsAny(name, " \r\n") {
		return fmt.Errorf("client: bad %s %q", kind, name)
	}
	return nil
}

// jsonArg marshals a spec for the wire. encoding/json escapes newlines
// inside strings, so the payload is always a single line.
func jsonArg(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("client: encode spec: %w", err)
	}
	return string(data), nil
}

// CreateTable creates a table on the server.
func (c *Conn) CreateTable(spec TableSpec) error {
	arg, err := jsonArg(spec)
	if err != nil {
		return err
	}
	_, err = c.call("TABLE " + arg)
	return err
}

// Insert inserts one row of JSON-scalar values (column name → value)
// and returns its row ID. The server's commit path runs triggers: a
// BEFORE veto surfaces as an *Error with code "aborted".
func (c *Conn) Insert(table string, values map[string]any) (uint64, error) {
	if err := checkName("table", table); err != nil {
		return 0, err
	}
	arg, err := jsonArg(values)
	if err != nil {
		return 0, err
	}
	resp, err := c.call("INSERT " + table + " " + arg)
	if err != nil {
		return 0, err
	}
	id, err := strconv.ParseUint(resp, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("client: bad INSERT reply %q", resp)
	}
	return id, nil
}

// mutate runs UPDATE/DELETE and parses the affected-row count.
func (c *Conn) mutate(verb, table string, payload any) (int, error) {
	if err := checkName("table", table); err != nil {
		return 0, err
	}
	arg, err := jsonArg(payload)
	if err != nil {
		return 0, err
	}
	resp, err := c.call(verb + " " + table + " " + arg)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(resp)
	if err != nil {
		return 0, fmt.Errorf("client: bad %s reply %q", verb, resp)
	}
	return n, nil
}

// Update sets columns on every row matching the where predicate (all
// rows when empty), atomically, returning the affected count.
func (c *Conn) Update(table, where string, set map[string]any) (int, error) {
	return c.mutate("UPDATE", table, struct {
		Where string         `json:"where,omitempty"`
		Set   map[string]any `json:"set"`
	}{where, set})
}

// Delete removes every row matching the where predicate (all rows when
// empty), atomically, returning the affected count.
func (c *Conn) Delete(table, where string) (int, error) {
	return c.mutate("DELETE", table, struct {
		Where string `json:"where,omitempty"`
	}{where})
}

// Select runs a one-shot query through the server's planner.
func (c *Conn) Select(spec QuerySpec) (*Result, error) {
	arg, err := jsonArg(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.call("SELECT " + arg)
	if err != nil {
		return nil, err
	}
	return wiredb.ParseResult([]byte(resp))
}

// SelectRaw runs a one-shot query from its raw JSON spec and returns
// the server's raw JSON result undecoded — for proxies (the HTTP
// gateway) that forward both sides verbatim. The spec is compacted
// before sending so embedded newlines cannot break wire framing;
// validation is the server's.
func (c *Conn) SelectRaw(spec []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, spec); err != nil {
		return nil, fmt.Errorf("client: bad query spec: %w", err)
	}
	resp, err := c.call("SELECT " + buf.String())
	if err != nil {
		return nil, err
	}
	return []byte(resp), nil
}

// Trigger registers a named trigger on the server. Triggers are
// engine-global: they keep capturing after this connection closes, and
// their change events reach subscribers on every connection.
func (c *Conn) Trigger(name string, spec TriggerSpec) error {
	if err := checkName("trigger name", name); err != nil {
		return err
	}
	arg, err := jsonArg(spec)
	if err != nil {
		return err
	}
	_, err = c.call("TRIG " + name + " " + arg)
	return err
}

// DropTrigger removes a trigger by name.
func (c *Conn) DropTrigger(name string) error {
	if err := checkName("trigger name", name); err != nil {
		return err
	}
	_, err := c.call("UNTRIG " + name)
	return err
}

// Watch schedules a server-side watched query: the query is polled on
// an interval and result-set diffs are ingested as
// "query.<name>.<added|removed|changed>" events. Subscribe to
// "query.<name>." types to receive them. Like triggers, watches are
// engine-global until Unwatch.
func (c *Conn) Watch(name string, spec WatchSpec) error {
	if err := checkName("watch name", name); err != nil {
		return err
	}
	arg, err := jsonArg(spec)
	if err != nil {
		return err
	}
	_, err = c.call("WATCH " + name + " " + arg)
	return err
}

// Unwatch stops a watched query.
func (c *Conn) Unwatch(name string) error {
	if err := checkName("watch name", name); err != nil {
		return err
	}
	_, err := c.call("UNWATCH " + name)
	return err
}
