package client

import (
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Retry is a self-healing connection: it owns a Conn, watches it die,
// redials with jittered exponential backoff, and re-registers every
// subscription, continuous query, durable consumer, and pattern on the
// fresh connection — so a server restart, failover, or network blip is
// an interruption, not an outage, from the caller's point of view.
//
//	r, err := client.WithRetry("127.0.0.1:7070", client.RetryPolicy{},
//	          client.WithBinary(), client.WithFallbacks(standby))
//	sub, _ := r.Subscribe("hot", "temp > 30", 64)
//	for ev := range sub.C { ... }   // channel survives reconnects
//
// Subscription channels stay open across reconnects (they close only
// on Retry.Close); events in flight when the connection died are lost
// for ephemeral subscriptions, exactly as the server-side semantics
// say, while durable deliveries come back via the queue's redelivery.
// Publish is idempotent across the ambiguity window: every event goes
// out as PUBT under a per-Retry session token, so an event whose reply
// was lost with the connection is republished on the new one and
// deduplicated server-side ("received ∪ redelivered == published",
// never double-ingest).
//
// The zero RetryPolicy is usable: 8 attempts per operation, 25ms base
// delay doubling to a 2s cap, 50% jitter, unlimited redials.

// RetryPolicy tunes WithRetry's reconnect and per-operation retry
// behavior. The zero value means defaults.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation (Publish) before giving up
	// with the last error. Default 8. Redialing itself is not bounded:
	// the supervisor keeps trying until Close, since subscriptions must
	// survive outages of unknown length.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 25ms); each further
	// attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
	// Jitter is the randomized fraction of each delay, 0..1 (default
	// 0.5): the actual sleep is uniform in [d·(1−Jitter), d], which
	// de-synchronizes a fleet of clients reconnecting after one outage.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	return p
}

// backoff computes the jittered delay before attempt n (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Uniform in [d·(1−Jitter), d]. rand's global source is
	// goroutine-safe.
	spread := time.Duration(float64(d) * p.Jitter)
	if spread > 0 {
		d -= time.Duration(rand.Int63n(int64(spread) + 1))
	}
	return d
}

// retryReg is one desired registration, replayed onto every fresh
// connection. Exactly one of the kind-specific fields is meaningful.
type retryReg struct {
	id     string
	kind   string // "sub", "cq", "qsub"
	filter string
	spec   CQSpec
	dopts  DurableOptions
	buffer int

	// evCh/dCh are the stable caller-facing channels; inner is the
	// per-incarnation channel handoff to the pump goroutine.
	evCh    chan *Event
	dCh     chan Delivery
	innerEv chan (<-chan *Event)
	innerD  chan (<-chan Delivery)
	stop    chan struct{}

	// cur points at the live inner subscription so Close can detach it
	// (guarded by Retry.mu).
	curSub *Subscription
	curDur *DurableSub
}

// Retry supervises one logical connection. Safe for concurrent use.
type Retry struct {
	addr    string
	opts    []Option
	policy  RetryPolicy
	session string

	mu       sync.Mutex
	cur      *Conn
	closed   bool
	regs     map[string]*retryReg
	patterns map[string]PatternSpec

	pubMu sync.Mutex // serializes Publish so PUBT sequences leave in order
	seq   uint64     // last assigned PUBT sequence (guarded by pubMu)

	reconnects atomic.Uint64
	done       chan struct{}
}

// WithRetry dials addr (with the usual Dial options) and wraps the
// connection in a reconnecting supervisor. The initial dial is
// synchronous so configuration errors surface immediately; after that
// the supervisor owns the connection's lifecycle until Close.
func WithRetry(addr string, policy RetryPolicy, opts ...Option) (*Retry, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	var tok [8]byte
	if _, err := crand.Read(tok[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: session token: %w", err)
	}
	r := &Retry{
		addr:     addr,
		opts:     opts,
		policy:   policy.withDefaults(),
		session:  "s" + hex.EncodeToString(tok[:]),
		cur:      c,
		regs:     make(map[string]*retryReg),
		patterns: make(map[string]PatternSpec),
		done:     make(chan struct{}),
	}
	go r.supervise(c)
	return r, nil
}

// Session returns the PUBT idempotency session token (diagnostics).
func (r *Retry) Session() string { return r.session }

// Reconnects reports how many times the supervisor has replaced the
// underlying connection.
func (r *Retry) Reconnects() uint64 { return r.reconnects.Load() }

// Conn returns the current underlying connection, or nil while
// disconnected. It may die at any moment; prefer the Retry methods.
func (r *Retry) Conn() *Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Close shuts the supervisor down: the underlying connection closes,
// every subscription channel closes, and no redial happens.
func (r *Retry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.cur
	regs := make([]*retryReg, 0, len(r.regs))
	for _, reg := range r.regs {
		regs = append(regs, reg)
	}
	r.mu.Unlock()
	close(r.done)
	for _, reg := range regs {
		close(reg.stop)
	}
	if c != nil {
		c.Close()
	}
	return nil
}

// supervise watches one connection incarnation die, then redials
// forever (with backoff) until Close, replaying registrations onto
// each fresh connection.
func (r *Retry) supervise(c *Conn) {
	for {
		select {
		case <-c.Done():
		case <-r.done:
			return
		}
		r.mu.Lock()
		if r.cur == c {
			r.cur = nil
		}
		r.mu.Unlock()
		nc := r.redial()
		if nc == nil {
			return // closed while disconnected
		}
		c = nc
	}
}

// redial reconnects with jittered exponential backoff, installs the
// fresh connection, and replays the desired registrations. Returns nil
// only when the Retry was closed.
func (r *Retry) redial() *Conn {
	for attempt := 0; ; attempt++ {
		t := time.NewTimer(r.policy.backoff(attempt))
		select {
		case <-t.C:
		case <-r.done:
			t.Stop()
			return nil
		}
		c, err := Dial(r.addr, r.opts...)
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return nil
		}
		r.cur = c
		r.reconnects.Add(1)
		r.resumeLocked(c)
		r.mu.Unlock()
		return c
	}
}

// resumeLocked replays every desired registration onto a fresh
// connection. Failures are tolerated per registration: a filter the
// server now refuses (or a pattern that persisted server-side and
// answers dup) must not poison the rest; the next reconnect retries.
// Caller holds r.mu.
func (r *Retry) resumeLocked(c *Conn) {
	for name, spec := range r.patterns {
		if err := c.Pattern(name, spec); err != nil {
			var serr *Error
			if !errors.As(err, &serr) || serr.Code != "dup" {
				continue // transport death is caught by the supervisor
			}
		}
	}
	for _, reg := range r.regs {
		r.attachLocked(c, reg)
	}
}

// attachLocked performs one registration on c and hands the resulting
// inner channel to the registration's pump. Caller holds r.mu.
func (r *Retry) attachLocked(c *Conn, reg *retryReg) error {
	switch reg.kind {
	case "sub":
		s, err := c.Subscribe(reg.id, reg.filter, reg.buffer)
		if err != nil {
			return err
		}
		reg.curSub = s
		reg.innerEv <- s.C
	case "cq":
		s, err := c.ContinuousQuery(reg.id, reg.spec, reg.buffer)
		if err != nil {
			return err
		}
		reg.curSub = s
		reg.innerEv <- s.C
	case "qsub":
		s, err := c.DurableSubscribe(reg.id, reg.filter, reg.dopts)
		if err != nil {
			return err
		}
		reg.curDur = s
		reg.innerD <- s.C
	}
	return nil
}

// pumpEvents forwards one registration's per-incarnation channels into
// its stable channel until the registration (or the Retry) closes. An
// inner channel closing means the connection died; the pump just waits
// for the next incarnation.
func (r *Retry) pumpEvents(reg *retryReg) {
	defer close(reg.evCh)
	for {
		var inner <-chan *Event
		select {
		case inner = <-reg.innerEv:
		case <-reg.stop:
			return
		}
		for ev := range inner {
			select {
			case reg.evCh <- ev:
			case <-reg.stop:
				return
			}
		}
	}
}

// pumpDeliveries is pumpEvents for durable deliveries.
func (r *Retry) pumpDeliveries(reg *retryReg) {
	defer close(reg.dCh)
	for {
		var inner <-chan Delivery
		select {
		case inner = <-reg.innerD:
		case <-reg.stop:
			return
		}
		for d := range inner {
			select {
			case reg.dCh <- d:
			case <-reg.stop:
				return
			}
		}
	}
}

// register installs a desired registration, attaches it to the current
// connection when one is live, and starts its pump.
func (r *Retry) register(reg *retryReg) error {
	if strings.ContainsAny(reg.id, " \r\n") || reg.id == "" {
		return fmt.Errorf("client: bad subscription id %q", reg.id)
	}
	if strings.ContainsAny(reg.filter, "\r\n") {
		return fmt.Errorf("client: filter must not contain newlines")
	}
	reg.stop = make(chan struct{})
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, dup := r.regs[reg.id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("client: subscription %q already exists", reg.id)
	}
	if c := r.cur; c != nil {
		// Attach first so a refused spec (bad filter, dup on server)
		// surfaces synchronously instead of failing silently on every
		// reconnect.
		if err := r.attachLocked(c, reg); err != nil {
			if c.Err() == nil {
				r.mu.Unlock()
				return err
			}
			// The connection died mid-attach: record the registration;
			// the redial will attach it.
		}
	}
	r.regs[reg.id] = reg
	r.mu.Unlock()
	if reg.kind == "qsub" {
		go r.pumpDeliveries(reg)
	} else {
		go r.pumpEvents(reg)
	}
	return nil
}

// unregister removes a registration and detaches its live incarnation.
func (r *Retry) unregister(id string) error {
	r.mu.Lock()
	reg, ok := r.regs[id]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	delete(r.regs, id)
	curSub, curDur := reg.curSub, reg.curDur
	r.mu.Unlock()
	close(reg.stop)
	var err error
	if curSub != nil {
		err = curSub.Close()
	}
	if curDur != nil {
		err = curDur.Close()
	}
	return err
}

// RetrySub is a subscription whose channel survives reconnects.
type RetrySub struct {
	// C delivers pushed events until the RetrySub (or its Retry) closes.
	C <-chan *Event

	id string
	r  *Retry
}

// ID returns the subscription id.
func (s *RetrySub) ID() string { return s.id }

// Close detaches the subscription (on the live connection, if any) and
// closes C.
func (s *RetrySub) Close() error { return s.r.unregister(s.id) }

// RetryDurable is a durable consumer whose channel survives
// reconnects; unacked deliveries lost with a connection come back as
// redeliveries through the queue's visibility timeout.
type RetryDurable struct {
	// C delivers staged messages until the RetryDurable (or its Retry)
	// closes.
	C <-chan Delivery

	name string
	r    *Retry
}

// Name returns the durable queue name.
func (s *RetryDurable) Name() string { return s.name }

// Close detaches this consumer (the queue and its messages survive
// server-side) and closes C.
func (s *RetryDurable) Close() error { return s.r.unregister(s.name) }

// Subscribe registers a predicate subscription that is automatically
// re-registered on every reconnect. The returned channel stays open
// across reconnects; pushes in flight when a connection dies are lost
// (ephemeral semantics — use DurableSubscribe for loss-free delivery).
func (r *Retry) Subscribe(id, filter string, buffer int) (*RetrySub, error) {
	reg := &retryReg{
		id: id, kind: "sub", filter: filter, buffer: buffer,
		evCh:    make(chan *Event, chanBuf(buffer, 64)),
		innerEv: make(chan (<-chan *Event), 1),
	}
	if err := r.register(reg); err != nil {
		return nil, err
	}
	return &RetrySub{C: reg.evCh, id: id, r: r}, nil
}

// ContinuousQuery attaches a standing aggregation that is re-attached
// on every reconnect. Window state is server-side and restarts empty
// on a server restart; results resume as events arrive.
func (r *Retry) ContinuousQuery(id string, spec CQSpec, buffer int) (*RetrySub, error) {
	reg := &retryReg{
		id: id, kind: "cq", spec: spec, buffer: buffer,
		evCh:    make(chan *Event, chanBuf(buffer, 64)),
		innerEv: make(chan (<-chan *Event), 1),
	}
	if err := r.register(reg); err != nil {
		return nil, err
	}
	return &RetrySub{C: reg.evCh, id: id, r: r}, nil
}

// DurableSubscribe attaches to a named durable queue and re-attaches
// on every reconnect: deliveries that were in flight when a connection
// died return via the server's visibility timeout, preserving
// at-least-once end to end.
func (r *Retry) DurableSubscribe(name, filter string, opts DurableOptions) (*RetryDurable, error) {
	reg := &retryReg{
		id: name, kind: "qsub", filter: filter, dopts: opts,
		dCh:    make(chan Delivery, chanBuf(opts.Buffer, 256)),
		innerD: make(chan (<-chan Delivery), 1),
	}
	if err := r.register(reg); err != nil {
		return nil, err
	}
	return &RetryDurable{C: reg.dCh, name: name, r: r}, nil
}

// Pattern registers a composite-event pattern and re-registers it on
// every reconnect ("dup" answers — the pattern persisted server-side —
// count as success).
func (r *Retry) Pattern(name string, spec PatternSpec) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	c := r.cur
	r.patterns[name] = spec
	r.mu.Unlock()
	if c == nil {
		return nil // registered on reconnect
	}
	err := c.Pattern(name, spec)
	var serr *Error
	if err != nil && errors.As(err, &serr) && serr.Code == "dup" {
		return nil
	}
	if err != nil && c.Err() != nil {
		return nil // connection died mid-call; redial replays it
	}
	if err != nil {
		r.mu.Lock()
		delete(r.patterns, name)
		r.mu.Unlock()
	}
	return err
}

// Unpattern removes a pattern from the desired state and the server.
func (r *Retry) Unpattern(name string) error {
	r.mu.Lock()
	delete(r.patterns, name)
	c := r.cur
	r.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Unpattern(name)
}

// Publish publishes one event at-least-once-with-dedup: it is sent as
// PUBT under the Retry's session token, so a republish after a
// connection died mid-reply is recognized server-side and not ingested
// twice. Publishes are serialized (the session's sequence numbers must
// reach the server in order); definitive refusals (bad JSON, shed,
// readonly) are returned immediately, while transport failures and
// "degraded" answers retry with backoff up to MaxAttempts.
func (r *Retry) Publish(ev *Event) (int, error) {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	r.seq++
	seq := r.seq
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(r.policy.backoff(attempt - 1))
			select {
			case <-t.C:
			case <-r.done:
				t.Stop()
				return 0, ErrClosed
			}
		}
		r.mu.Lock()
		c, closed := r.cur, r.closed
		r.mu.Unlock()
		if closed {
			return 0, ErrClosed
		}
		if c == nil {
			lastErr = errors.New("client: disconnected, reconnect in progress")
			continue
		}
		n, _, err := c.PublishT(r.session, seq, ev)
		if err == nil {
			return n, nil
		}
		lastErr = err
		var serr *Error
		if errors.As(err, &serr) && serr.Code != "degraded" && serr.Code != "internal" {
			// A definitive, coded refusal: retrying cannot change it.
			return 0, err
		}
	}
	return 0, fmt.Errorf("client: publish gave up after %d attempts: %w", r.policy.MaxAttempts, lastErr)
}

// Health fetches the current server's health snapshot (no retry — a
// health probe wants the truth now, not after a backoff).
func (r *Retry) Health() (Health, error) {
	r.mu.Lock()
	c := r.cur
	r.mu.Unlock()
	if c == nil {
		return Health{}, errors.New("client: disconnected")
	}
	return c.Health()
}

func chanBuf(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}
