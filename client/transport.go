package client

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"eventdb/internal/frame"
)

// The wire transport abstraction: one API, two encodings. A transport
// owns the encoding of outbound commands and the decoding of inbound
// traffic into wire messages; everything above it — demultiplexing,
// subscriptions, request/reply ordering — is mode-agnostic.
//
// textTransport speaks the legacy line protocol every server
// understands; binTransport speaks the length-prefixed frame protocol
// negotiated by HELLO 2 (internal/frame, PROTOCOL.md). Dial picks one
// during the synchronous handshake, before the read loop starts.

// wkind classifies one inbound wire message.
type wkind int

const (
	// wReply is a request reply or connection-level line ("OK ...",
	// "ERR ...", "PONG", "REPL ..." records).
	wReply wkind = iota
	// wEvt is a pushed subscription event.
	wEvt
	// wQEvt is a pushed durable queue delivery.
	wQEvt
	// wSkip is a malformed push: ignored, never fatal (matching the
	// text protocol's tolerance).
	wSkip
)

// wmsg is one decoded inbound message. body aliases transport-owned
// memory and is only valid until the next recv call.
type wmsg struct {
	kind    wkind
	line    string // wReply
	id      string // wEvt subscription id
	queue   string // wQEvt
	token   string // wQEvt
	attempt int    // wQEvt
	body    []byte // wEvt/wQEvt event JSON
}

// transport encodes requests and decodes inbound traffic for one wire
// mode. send/sendEvent are serialized by Conn.sendMu; recv is called
// only by the read loop.
type transport interface {
	// send writes one command and its optional body units (PUBB batch
	// events), flushing once.
	send(cmd string, body ...string) error
	// sendEvent publishes one marshaled event — the hot path, spared
	// the verb formatting in binary mode.
	sendEvent(json []byte) error
	// recv decodes the next inbound message.
	recv() (wmsg, error)
}

// --- text -------------------------------------------------------------

type textTransport struct {
	w  *bufio.Writer
	br *bufio.Reader
}

func (t *textTransport) send(cmd string, body ...string) error {
	t.w.WriteString(cmd)
	t.w.WriteByte('\n')
	for _, line := range body {
		t.w.WriteString(line)
		t.w.WriteByte('\n')
	}
	return t.w.Flush()
}

func (t *textTransport) sendEvent(json []byte) error {
	t.w.WriteString("PUB ")
	t.w.Write(json)
	t.w.WriteByte('\n')
	return t.w.Flush()
}

func (t *textTransport) recv() (wmsg, error) {
	line, err := t.br.ReadString('\n')
	if err != nil {
		return wmsg{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	if rest, ok := strings.CutPrefix(line, "EVT "); ok {
		id, body, _ := strings.Cut(rest, " ")
		return wmsg{kind: wEvt, id: id, body: []byte(body)}, nil
	}
	if rest, ok := strings.CutPrefix(line, "QEVT "); ok {
		name, rest, _ := strings.Cut(rest, " ")
		token, rest, _ := strings.Cut(rest, " ")
		attemptStr, body, _ := strings.Cut(rest, " ")
		attempt, err := strconv.Atoi(attemptStr)
		if err != nil {
			return wmsg{kind: wSkip}, nil
		}
		return wmsg{kind: wQEvt, queue: name, token: token, attempt: attempt, body: []byte(body)}, nil
	}
	return wmsg{kind: wReply, line: line}, nil
}

// --- binary -----------------------------------------------------------

type binTransport struct {
	w   *bufio.Writer
	fr  *frame.Reader
	buf []byte // scratch for outbound frames (guarded by Conn.sendMu)
}

func (t *binTransport) send(cmd string, body ...string) error {
	t.buf = frame.AppendFrameString(t.buf[:0], frame.Cmd, cmd)
	if _, err := t.w.Write(t.buf); err != nil {
		return err
	}
	for _, line := range body {
		t.buf = frame.AppendFrameString(t.buf[:0], frame.Data, line)
		if _, err := t.w.Write(t.buf); err != nil {
			return err
		}
	}
	return t.w.Flush()
}

func (t *binTransport) sendEvent(json []byte) error {
	t.buf = frame.AppendFrame(t.buf[:0], frame.Pub, json)
	if _, err := t.w.Write(t.buf); err != nil {
		return err
	}
	return t.w.Flush()
}

func (t *binTransport) recv() (wmsg, error) {
	typ, payload, err := t.fr.Next()
	if err != nil {
		return wmsg{}, err
	}
	switch typ {
	case frame.Reply:
		return wmsg{kind: wReply, line: string(payload)}, nil
	case frame.Evt:
		id, body, ok := frame.DecodeEvt(payload)
		if !ok {
			return wmsg{kind: wSkip}, nil
		}
		return wmsg{kind: wEvt, id: id, body: body}, nil
	case frame.QEvt:
		queue, token, attempt, body, ok := frame.DecodeQEvt(payload)
		if !ok {
			return wmsg{kind: wSkip}, nil
		}
		return wmsg{kind: wQEvt, queue: queue, token: token, attempt: attempt, body: body}, nil
	default:
		// Unknown frame types are a framing-trust failure, not a skippable
		// push: the stream cannot be safely resynchronized.
		return wmsg{}, fmt.Errorf("client: unexpected frame type %s", typ)
	}
}

// --- negotiation ------------------------------------------------------

// negotiate runs the HELLO handshake synchronously (before the read
// loop exists): it asks for protocol version 2 plus the requested
// flags and interprets the server's answer. A pre-HELLO server answers
// "ERR unknown ..." — that is a silent fallback to text, not a
// failure, so new clients keep working against old servers.
func negotiate(nc net.Conn, br *bufio.Reader, w *bufio.Writer, wantPark, wantLowprio bool) (binary, park, lowprio bool, err error) {
	cmd := "HELLO 2"
	var flags []string
	if wantPark {
		flags = append(flags, "park")
	}
	if wantLowprio {
		flags = append(flags, "lowprio")
	}
	if len(flags) > 0 {
		cmd += " " + strings.Join(flags, ",")
	}
	w.WriteString(cmd)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return false, false, false, fmt.Errorf("client: hello: %w", err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return false, false, false, fmt.Errorf("client: hello: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if msg, ok := strings.CutPrefix(line, "ERR "); ok {
		serr := serverError(msg)
		if serr.Code == "unknown" {
			return false, false, false, nil // pre-HELLO server: stay on text
		}
		return false, false, false, serr
	}
	rest, ok := strings.CutPrefix(line, "OK ")
	if !ok {
		return false, false, false, fmt.Errorf("client: bad HELLO reply %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return false, false, false, fmt.Errorf("client: bad HELLO reply %q", line)
	}
	ver, err := strconv.Atoi(fields[0])
	if err != nil {
		return false, false, false, fmt.Errorf("client: bad HELLO reply %q", line)
	}
	if len(fields) > 1 {
		for _, f := range strings.Split(fields[1], ",") {
			switch f {
			case "park":
				park = true
			case "lowprio":
				lowprio = true
			}
		}
	}
	return ver >= 2, park, lowprio, nil
}
