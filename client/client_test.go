package client_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eventdb/client"
	"eventdb/internal/core"
	"eventdb/internal/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	eng, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := server.Start(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestPushAcrossConnections is the library's reason to exist: a
// subscriber dialed through the client package receives pushed EVT
// lines for events published on a *different* connection.
func TestPushAcrossConnections(t *testing.T) {
	srv := startServer(t)

	subConn, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	sub, err := subConn.Subscribe("alerts", "sev >= 3", 16)
	if err != nil {
		t.Fatal(err)
	}

	pubConn, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pubConn.Close()
	for sev := 1; sev <= 5; sev++ {
		if _, err := pubConn.Publish(client.NewEvent("alarm", map[string]any{"sev": sev})); err != nil {
			t.Fatal(err)
		}
	}

	for _, want := range []string{"3", "4", "5"} {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatal("channel closed")
			}
			if v, _ := ev.Get("sev"); v.String() != want {
				t.Errorf("sev = %v, want %s", v, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no push for sev=%s", want)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("dropped = %d", d)
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Ping(); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Publish(client.NewEvent("e", map[string]any{"g": g, "i": i})); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPublishBatchRoundTrip(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	evs := make([]*client.Event, 64)
	for i := range evs {
		evs[i] = client.NewEvent("t", map[string]any{"i": i})
	}
	n, err := c.PublishBatch(evs)
	if err != nil || n != 64 {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	if n, err := c.PublishBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v", n, err)
	}
}

func TestSubscriptionIDValidation(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, bad := range []string{"", "has space", "has\nnewline"} {
		if _, err := c.Subscribe(bad, "", 4); err == nil {
			t.Errorf("id %q accepted", bad)
		}
	}
}

func TestCloseFailsPendingAndClosesSubs(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe("s", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Error("event after close")
		}
	case <-time.After(time.Second):
		t.Error("channel not closed")
	}
	if err := c.Ping(); err == nil {
		t.Error("ping on closed conn succeeded")
	}
	if c.Err() == nil {
		t.Error("Err() nil after close")
	}
	if err := sub.Close(); err != nil {
		t.Errorf("sub close after conn close: %v", err)
	}
}

func TestServerShutdownClosesChannels(t *testing.T) {
	eng, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := server.Start(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("s", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Error("unexpected event")
		}
	case <-time.After(5 * time.Second):
		t.Error("channel not closed after server shutdown")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Subscribe(fmt.Sprintf("s%d", i), "", 4); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Subs != 3 || st.CQs != 0 {
		t.Errorf("stats = %+v", st)
	}
}
