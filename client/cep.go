package client

import "eventdb/internal/cep"

// The pattern verbs: temporal composite-event detection over the event
// stream. A registered pattern compiles into the server's shared
// automaton; when its step sequence completes within the window, the
// server ingests a "cep.<name>" composite event whose attributes are
// the bound events' attributes prefixed by alias ("a_user", "b_amount",
// …). Subscribe, CQ, or queue-bind to `$type = 'cep.<name>'` to
// receive matches. Patterns are engine-global and, on a durable
// leader, survive restarts.

// PatternSpec declares a pattern for Pattern: an ordered list of steps,
// an optional WITHIN window ("30s", "5m", …), and a match strategy
// ("skip-till-next" (default), "skip-till-any", or "strict").
type PatternSpec = cep.Spec

// PatternStep is one step of a PatternSpec. Negated steps must not
// occur between the surrounding positive steps.
type PatternStep = cep.StepSpec

// Pattern registers a named event pattern on the server. Like
// triggers, patterns are engine-global: they keep matching after this
// connection closes, and their composite events reach subscribers on
// every connection.
func (c *Conn) Pattern(name string, spec PatternSpec) error {
	if err := checkName("pattern name", name); err != nil {
		return err
	}
	arg, err := jsonArg(spec)
	if err != nil {
		return err
	}
	_, err = c.call("PATTERN " + name + " " + arg)
	return err
}

// Unpattern removes a registered pattern by name.
func (c *Conn) Unpattern(name string) error {
	if err := checkName("pattern name", name); err != nil {
		return err
	}
	_, err := c.call("UNPATTERN " + name)
	return err
}
