package client

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// RawRecord is one WAL record received over a replication stream: the
// leader's LSN, the record type byte, and the opaque record payload.
// Most programs use internal/repl.Follower (which applies records to a
// local engine); RawRecord is for tooling that wants the raw stream —
// audit, offline archival, custom appliers.
type RawRecord struct {
	LSN  uint64
	Type uint8
	Data []byte
}

// replWire mirrors the JSON body of a REPL line (internal/repl codec).
type replWire struct {
	Type uint8  `json:"t"`
	Data []byte `json:"d"`
}

// ReplStream is a live WAL-shipping stream from the server. Receive
// from C; the channel closes when the stream or connection closes.
type ReplStream struct {
	// C delivers WAL records in LSN order.
	C <-chan RawRecord

	// NextLSN is the end of the server's log at stream start; records
	// from the requested position up to here are history, everything
	// after is live tail.
	NextLSN uint64

	c       *Conn
	ch      chan RawRecord
	dropped atomic.Uint64
}

// Dropped reports records discarded client-side because C's buffer was
// full when they arrived. A non-zero value means the stream has a gap:
// resume from the last contiguous LSN with a fresh Replicate call.
func (s *ReplStream) Dropped() uint64 { return s.dropped.Load() }

// Ack reports replication progress to the server: cursor is the next
// LSN this client expects. The server surfaces it per connection
// (Server.ReplicaCursors) for lag monitoring.
func (s *ReplStream) Ack(cursor uint64) error {
	_, err := s.c.call("RACK " + strconv.FormatUint(cursor, 10))
	return err
}

// Close detaches the stream from the server and closes C.
func (s *ReplStream) Close() error {
	s.c.mu.Lock()
	if s.c.repl != s {
		s.c.mu.Unlock()
		return nil // already closed (or the connection died)
	}
	s.c.repl = nil
	close(s.ch)
	s.c.mu.Unlock()
	_, err := s.c.call("UNSUB repl")
	return err
}

// Replicate starts a WAL-shipping stream from fromLSN (0 or 1 for the
// whole log). Records arrive on the returned stream's channel
// (buffered to buffer, default 256) in LSN order: history first, then
// the live tail as the server commits. One stream per connection.
func (c *Conn) Replicate(fromLSN uint64, buffer int) (*ReplStream, error) {
	if buffer <= 0 {
		if c.subBuf > 0 {
			buffer = c.subBuf
		} else {
			buffer = 256
		}
	}
	s := &ReplStream{c: c, ch: make(chan RawRecord, buffer)}
	s.C = s.ch
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.err
	}
	if c.repl != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: a replication stream is already active")
	}
	c.repl = s
	c.mu.Unlock()
	resp, err := c.call("REPLICATE " + strconv.FormatUint(fromLSN, 10))
	if err != nil {
		c.mu.Lock()
		if c.repl == s {
			c.repl = nil
			close(s.ch)
		}
		c.mu.Unlock()
		return nil, err
	}
	next, err := strconv.ParseUint(resp, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("client: bad REPLICATE reply %q", resp)
	}
	s.NextLSN = next
	return s, nil
}

// routeRepl parses one pushed "REPL " line and hands it to the active
// stream. Called from readLoop.
func (c *Conn) routeRepl(rest string) {
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return // malformed push must not kill the connection
	}
	lsn, err := strconv.ParseUint(rest[:sp], 10, 64)
	if err != nil {
		return
	}
	var w replWire
	if err := json.Unmarshal([]byte(rest[sp+1:]), &w); err != nil {
		return
	}
	rec := RawRecord{LSN: lsn, Type: w.Type, Data: w.Data}
	c.mu.Lock()
	if s := c.repl; s != nil {
		select {
		case s.ch <- rec:
		default:
			s.dropped.Add(1)
		}
	}
	c.mu.Unlock()
}
