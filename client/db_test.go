package client_test

import (
	"errors"
	"testing"

	"eventdb/client"
)

// TestDatabaseVerbs drives the client's database APIs against a live
// server: DDL, DML through triggers, one-shot reads, and structured
// error codes.
func TestDatabaseVerbs(t *testing.T) {
	srv := startServer(t)
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CreateTable(client.TableSpec{
		Name: "sensors",
		Columns: []client.ColumnSpec{
			{Name: "site", Kind: "string", NotNull: true},
			{Name: "temp", Kind: "float", NotNull: true},
			{Name: "at", Kind: "time"},
		},
	}); err != nil {
		t.Fatal(err)
	}

	// A duplicate table is a structured "dup" refusal.
	err = c.CreateTable(client.TableSpec{
		Name:    "sensors",
		Columns: []client.ColumnSpec{{Name: "x", Kind: "int"}},
	})
	var serr *client.Error
	if !errors.As(err, &serr) || serr.Code != "dup" {
		t.Fatalf("duplicate table error = %v", err)
	}

	// Times cross the wire as RFC 3339 strings.
	if _, err := c.Insert("sensors", map[string]any{
		"site": "lab", "temp": 21.5, "at": "2026-07-30T08:00:00Z",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("sensors", map[string]any{"site": "roof", "temp": 35.0}); err != nil {
		t.Fatal(err)
	}

	res, err := c.Select(client.QuerySpec{
		Table: "sensors", Where: "temp > 30", Select: []string{"site", "at"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "roof" || res.Rows[0][1] != nil {
		t.Fatalf("select = %+v", res)
	}

	if n, err := c.Update("sensors", "site = 'lab'", map[string]any{"temp": 22.0}); err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	if n, err := c.Delete("sensors", "temp >= 22"); err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}

	// Spec problems come back as "badspec"; missing tables as
	// "notable"; framing-hostile names are rejected client-side.
	if _, err := c.Select(client.QuerySpec{Table: "missing"}); !errors.As(err, &serr) || serr.Code != "notable" {
		t.Fatalf("missing table error = %v", err)
	}
	if _, err := c.Update("sensors", "temp >>> 1", map[string]any{"temp": 0}); !errors.As(err, &serr) || serr.Code != "badspec" {
		t.Fatalf("bad where error = %v", err)
	}
	if _, err := c.Insert("bad name", nil); err == nil {
		t.Fatal("table name with a space accepted")
	}
	if err := c.Watch("w", client.WatchSpec{}); !errors.As(err, &serr) || serr.Code != "badspec" {
		t.Fatalf("empty watch error = %v", err)
	}
	if err := c.Unwatch("nope"); !errors.As(err, &serr) || serr.Code != "nowatch" {
		t.Fatalf("unwatch error = %v", err)
	}
	if err := c.DropTrigger("nope"); !errors.As(err, &serr) || serr.Code != "notrig" {
		t.Fatalf("drop trigger error = %v", err)
	}
	// The connection survives every refusal.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
