// Package client is the Go client library for an eventdb streaming
// server (internal/server, served by cmd/eventdbd). It speaks the
// full-duplex line protocol: request/reply commands (Publish,
// PublishBatch, Match, Ping, Stats) multiplex over one TCP connection
// with asynchronously pushed "EVT" lines, which the client routes to
// per-subscription channels.
//
//	c, err := client.Dial("127.0.0.1:7070")
//	if err != nil { ... }
//	defer c.Close()
//
//	sub, err := c.Subscribe("hot", "temp > 30", 64)
//	if err != nil { ... }
//	go func() {
//		for ev := range sub.C {
//			fmt.Println("pushed:", ev)
//		}
//	}()
//	c.Publish(client.NewEvent("reading", map[string]any{"temp": 35}))
//
// Subscribe is ephemeral: a dropped connection loses whatever was in
// flight. DurableSubscribe instead stages matched events in a named,
// server-side durable queue and delivers them with receipts
// (Delivery.Ack / Delivery.Nack) — at-least-once, resumable by
// re-attaching to the same name after a reconnect or server restart,
// with Replay backfilling history from the server's journal. Consume
// is its polling counterpart and QueueStats its introspection.
//
// One goroutine owns the socket's read side and demultiplexes; any
// number of goroutines may issue requests concurrently. If a pushed
// event arrives for a subscription whose channel is full, the event is
// dropped client-side and counted (Subscription.Dropped) — a slow
// consumer loses pushes rather than stalling every subscription on the
// connection. Size the channel (or drain faster) to taste.
//
// # Wire modes
//
// By default the client speaks the legacy text line protocol, which
// every server version understands. WithBinary negotiates the
// length-prefixed binary frame protocol (HELLO 2, see PROTOCOL.md)
// during Dial — pushed events then skip line formatting and prefix
// scanning on both sides — and WithPark additionally asks the server
// to park the connection's reader goroutine while it idles. Both
// degrade gracefully: against a server that predates HELLO the
// connection silently stays on the text protocol (check Conn.Binary
// when it matters).
//
// # Dial options
//
// Dial is configured with functional options of type Option
// (WithFallbacks, RequireLeader, WithNetDial, WithBinary, WithPark,
// WithSubBuffer). Code written against the older DialOption name needs
// no changes — DialOption is now an alias of Option and every option
// constructor returns a value usable as either — but new code should
// spell the type Option; DialOption is deprecated and kept only for
// compatibility.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"eventdb/internal/cq"
	"eventdb/internal/event"
	"eventdb/internal/frame"
)

// Event is the event record exchanged with the server (an alias of the
// root eventdb package's Event).
type Event = event.Event

// NewEvent builds an event with a fresh ID and the current time.
func NewEvent(typ string, attrs map[string]any) *Event { return event.New(typ, attrs) }

// CQSpec declares a continuous query to attach over the wire: a
// standing filtered, grouped, windowed aggregation evaluated inside
// the server, pushing an updated result whenever the stream changes it.
type CQSpec = cq.Def

// CQAgg is one aggregate output of a CQSpec.
type CQAgg = cq.AggDef

// CQWindow bounds the stream portion a CQSpec aggregates.
type CQWindow = cq.Window

// Aggregate kinds for CQAgg.Kind.
const (
	Count = cq.Count
	Sum   = cq.Sum
	Avg   = cq.Avg
	Min   = cq.Min
	Max   = cq.Max
)

// Window kinds for CQWindow.Kind.
const (
	CountWindow = cq.CountWindow
	TimeWindow  = cq.TimeWindow
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("client: connection closed")

// Error is a structured server refusal: Code is a stable token from
// the server's error taxonomy (see ARCHITECTURE.md — "badargs",
// "nosub", "noqueue", "aborted", …) and Msg is the human-readable
// detail, which may change between releases. Branch on Code:
//
//	var serr *client.Error
//	if errors.As(err, &serr) && serr.Code == "aborted" { ... }
type Error struct {
	Code string
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Msg
	}
	return e.Code + ": " + e.Msg
}

// knownCodes mirrors the server's taxonomy (internal/server/errors.go)
// so free-text errors from pre-taxonomy servers are never mistaken for
// coded ones.
var knownCodes = map[string]bool{
	"unknown": true, "badargs": true, "badjson": true, "badspec": true,
	"toobig": true, "dup": true, "nosub": true, "noreceipt": true,
	"noqueue": true, "notable": true, "notrig": true, "nowatch": true,
	"nopattern": true,
	"conflict":  true, "aborted": true, "notdurable": true,
	"limit": true, "internal": true, "readonly": true, "degraded": true,
}

// serverError parses the payload of an "ERR " reply line. Replies from
// servers predating the taxonomy (no recognizable code token) keep the
// whole payload as Msg.
func serverError(payload string) *Error {
	code, msg, ok := strings.Cut(payload, " ")
	if !ok || !knownCodes[code] {
		return &Error{Msg: payload}
	}
	return &Error{Code: code, Msg: msg}
}

// Conn is a connection to an eventdb server. Safe for concurrent use.
type Conn struct {
	nc      net.Conn
	binary  bool // negotiated binary frame mode (HELLO 2)
	parked  bool // server granted the park flag
	lowprio bool // server granted the lowprio (sheddable) flag
	subBuf  int  // default subscription channel buffer (WithSubBuffer)

	sendMu  sync.Mutex       // serializes request writes with waiter order
	tr      transport        // guarded by sendMu for sends; recv is readLoop-only
	pending chan chan string // FIFO of reply waiters

	mu        sync.Mutex // guards subs/durables/consumers, closed, err, and channel closes
	subs      map[string]*Subscription
	durables  map[string]*DurableSub
	consumers map[string]chan Delivery // active Consume collectors
	closed    bool
	err       error
	repl      *ReplStream // active replication stream, if any

	done chan struct{} // closed when the connection dies
}

// Option customizes Dial: candidate fallbacks, leader routing, wire
// mode, buffer defaults. This is the canonical option type; the
// deprecated DialOption alias keeps older code compiling unchanged.
type Option func(*dialConfig)

// DialOption is the former name of Option.
//
// Deprecated: use Option. The alias is identical in every way and will
// be kept for compatibility, but new code should not spell it.
type DialOption = Option

type dialConfig struct {
	fallbacks     []string
	requireLeader bool
	netDial       func(addr string) (net.Conn, error)
	binary        bool
	park          bool
	lowprio       bool
	subBuffer     int
}

// WithFallbacks adds candidate addresses tried in order after the
// primary, for clusters where any member may answer.
func WithFallbacks(addrs ...string) Option {
	return func(d *dialConfig) { d.fallbacks = append(d.fallbacks, addrs...) }
}

// RequireLeader makes Dial probe each candidate's ROLE and keep only a
// node answering "leader" — so writes land somewhere that accepts them.
// Without it Dial keeps the first node that answers at all.
func RequireLeader() Option {
	return func(d *dialConfig) { d.requireLeader = true }
}

// WithNetDial substitutes the transport dialer (testing, proxies).
func WithNetDial(dial func(addr string) (net.Conn, error)) Option {
	return func(d *dialConfig) { d.netDial = dial }
}

// WithBinary negotiates the binary frame protocol (HELLO 2) during
// Dial. Against a server that predates HELLO the connection silently
// falls back to the text protocol; Conn.Binary reports the outcome.
func WithBinary() Option {
	return func(d *dialConfig) { d.binary = true }
}

// WithPark asks the server to park this connection's reader goroutine
// while the connection idles (implies the HELLO handshake). The server
// grants it only where supported; Conn.Parked reports the outcome.
// Parking is invisible to the API — it only changes what an idle
// connection costs the server.
func WithPark() Option {
	return func(d *dialConfig) { d.park = true }
}

// WithLowPriority declares this connection's publishes sheddable: while
// the server is over an overload watermark they are refused with the
// coded "limit" error instead of blocking, so high-priority producers
// keep their throughput. Implies the HELLO handshake (like WithPark);
// servers that predate the flag silently ignore it.
func WithLowPriority() Option {
	return func(d *dialConfig) { d.lowprio = true }
}

// WithSubBuffer sets the default channel buffer used when Subscribe,
// ContinuousQuery, DurableSubscribe, or Replicate is called with a
// non-positive buffer (instead of their built-in defaults of 64 or
// 256).
func WithSubBuffer(n int) Option {
	return func(d *dialConfig) { d.subBuffer = n }
}

// Dial connects to a server address. With WithFallbacks the addresses
// form a candidate list tried in order; with RequireLeader only a node
// currently serving as leader is kept. The first error per candidate is
// remembered and the last one surfaces if every candidate fails.
func Dial(addr string, opts ...Option) (*Conn, error) {
	var cfg dialConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.netDial == nil {
		cfg.netDial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	candidates := append([]string{addr}, cfg.fallbacks...)
	var lastErr error
	for _, cand := range candidates {
		nc, err := cfg.netDial(cand)
		if err != nil {
			lastErr = fmt.Errorf("client: dial %s: %w", cand, err)
			continue
		}
		c, err := newConn(nc, &cfg)
		if err != nil {
			nc.Close()
			lastErr = fmt.Errorf("client: negotiate %s: %w", cand, err)
			continue
		}
		if cfg.requireLeader {
			role, err := c.Role()
			if err != nil {
				c.Close()
				lastErr = fmt.Errorf("client: role probe %s: %w", cand, err)
				continue
			}
			if role != "leader" {
				c.Close()
				lastErr = fmt.Errorf("client: %s is a %s, not a leader", cand, role)
				continue
			}
		}
		return c, nil
	}
	return nil, lastErr
}

func newConn(nc net.Conn, cfg *dialConfig) (*Conn, error) {
	br := bufio.NewReaderSize(nc, 1<<16)
	w := bufio.NewWriterSize(nc, 1<<16)
	c := &Conn{
		nc:        nc,
		subBuf:    cfg.subBuffer,
		pending:   make(chan chan string, 128),
		subs:      make(map[string]*Subscription),
		durables:  make(map[string]*DurableSub),
		consumers: make(map[string]chan Delivery),
		done:      make(chan struct{}),
	}
	// Mode negotiation happens synchronously, before the read loop owns
	// the socket: one HELLO round trip, only when an option asked for
	// something the legacy protocol lacks.
	if cfg.binary || cfg.park || cfg.lowprio {
		binary, park, lowprio, err := negotiate(nc, br, w, cfg.park, cfg.lowprio)
		if err != nil {
			return nil, err
		}
		c.binary, c.parked, c.lowprio = binary, park, lowprio
	}
	if c.binary {
		c.tr = &binTransport{w: w, fr: frame.NewReader(br)}
	} else {
		c.tr = &textTransport{w: w, br: br}
	}
	go c.readLoop()
	return c, nil
}

// Binary reports whether the connection negotiated the binary frame
// protocol (false means the legacy text protocol, including after a
// silent fallback against an older server).
func (c *Conn) Binary() bool { return c.binary }

// Parked reports whether the server granted the WithPark flag.
func (c *Conn) Parked() bool { return c.parked }

// LowPriority reports whether the server granted the WithLowPriority
// flag (publishes may be shed with "ERR limit" under overload).
func (c *Conn) LowPriority() bool { return c.lowprio }

// Close tears the connection down. Subscription channels close; blocked
// calls fail with ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Done returns a channel closed when the connection dies (socket
// failure or Close). After it closes, Err reports the cause. It is the
// reconnect trigger for supervisors like WithRetry.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err reports why the connection died (nil while it is alive).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	return nil
}

// fail marks the connection dead, closes the socket, and closes every
// subscription channel. Idempotent; the first cause wins.
func (c *Conn) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = cause
	for _, s := range c.subs {
		close(s.ch)
	}
	c.subs = map[string]*Subscription{}
	for _, s := range c.durables {
		close(s.ch)
	}
	c.durables = map[string]*DurableSub{}
	if c.repl != nil {
		close(c.repl.ch)
		c.repl = nil
	}
	c.mu.Unlock()
	close(c.done) // wakes reply waiters
	c.nc.Close()
}

// readLoop owns the socket's read side: the transport decodes inbound
// traffic into wire messages, pushes route to subscription channels,
// and replies resolve the oldest pending waiter (the server replies in
// request order).
func (c *Conn) readLoop() {
	for {
		m, err := c.tr.recv()
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		switch m.kind {
		case wSkip:
			// A malformed push must not kill the connection.
			continue
		case wEvt:
			ev, err := event.UnmarshalJSONEvent(m.body)
			if err != nil {
				continue
			}
			c.mu.Lock()
			if s, ok := c.subs[m.id]; ok {
				select {
				case s.ch <- ev:
				default:
					s.dropped.Add(1)
				}
			}
			c.mu.Unlock()
			continue
		case wQEvt:
			ev, err := event.UnmarshalJSONEvent(m.body)
			if err != nil {
				continue
			}
			d := Delivery{Event: ev, Attempt: m.attempt, queue: m.queue, token: m.token, c: c}
			if lsnStr, ok := strings.CutPrefix(m.token, "h"); ok {
				// Historical replay delivery: carries a journal
				// position instead of an ackable receipt.
				if lsn, err := strconv.ParseUint(lsnStr, 10, 64); err == nil {
					d.Historical, d.LSN, d.token = true, lsn, "-"
				}
			}
			c.mu.Lock()
			c.routeDelivery(m.queue, d)
			c.mu.Unlock()
			continue
		}
		line := m.line
		if rest, ok := strings.CutPrefix(line, "REPL "); ok {
			c.routeRepl(rest)
			continue
		}
		select {
		case w := <-c.pending:
			w <- line
		default:
			// An unsolicited ERR is a connection-level refusal (e.g. a
			// full server's "connection limit reached"): surface the
			// server's own message rather than a demux complaint.
			if msg, ok := strings.CutPrefix(line, "ERR "); ok {
				c.fail(fmt.Errorf("client: server refused: %s", msg))
			} else {
				c.fail(fmt.Errorf("client: unsolicited reply %q", line))
			}
			return
		}
	}
}

// call sends one request (plus optional extra body lines, for batches)
// and waits for its single-line reply, with "ERR" replies surfaced as
// errors and the "OK " prefix stripped.
func (c *Conn) call(req string, extra ...string) (string, error) {
	return c.roundTrip(func() error { return c.tr.send(req, extra...) })
}

// roundTrip enqueues a reply waiter, runs one transport write under
// sendMu, and waits for the reply. The waiter is queued before the
// flush: the reply can arrive the moment the bytes hit the wire, and
// the reader must find it pending. The done case keeps a full pending
// queue on a dead connection from wedging the caller (and sendMu)
// forever.
func (c *Conn) roundTrip(send func() error) (string, error) {
	waiter := make(chan string, 1)
	c.sendMu.Lock()
	if err := c.Err(); err != nil {
		c.sendMu.Unlock()
		return "", err
	}
	select {
	case c.pending <- waiter:
	case <-c.done:
		c.sendMu.Unlock()
		return "", c.err
	}
	if err := send(); err != nil {
		c.sendMu.Unlock()
		c.fail(fmt.Errorf("client: write: %w", err))
		return "", err
	}
	c.sendMu.Unlock()
	select {
	case line := <-waiter:
		if msg, ok := strings.CutPrefix(line, "ERR "); ok {
			return "", serverError(msg)
		}
		return strings.TrimPrefix(line, "OK "), nil
	case <-c.done:
		return "", c.err
	}
}

// Role reports whether the server is a "leader" (accepts writes) or a
// read-only replication "follower".
func (c *Conn) Role() (string, error) {
	return c.call("ROLE")
}

// Promote asks a follower to become the leader: it stops replicating,
// re-enables writes, and re-attaches durable queue subscriptions.
// Returns the server's new role ("leader"). On a node that is already
// a leader it is a no-op.
func (c *Conn) Promote() (string, error) {
	return c.call("PROMOTE")
}

// Health is the server's operational snapshot, the parsed form of
// "HEALTH format=json" (PROTOCOL.md §9). Load balancers and
// supervisors branch on Role and Degraded; the rest is diagnostics.
type Health struct {
	Role           string `json:"role"`
	Degraded       bool   `json:"degraded"`
	DegradedCause  string `json:"degraded_cause"`
	Overloaded     bool   `json:"overloaded"`
	OverloadReason string `json:"overload_reason"`
	Durable        bool   `json:"durable"`
	Conns          int    `json:"conns"`
	SlowConsumers  int    `json:"slow_consumers"`
	Evicted        uint64 `json:"evicted"`
	Shed           uint64 `json:"shed"`
	Panics         uint64 `json:"panics"`
	LastApplied    uint64 `json:"last_applied"`
	NextLSN        uint64 `json:"next_lsn"`
	WALLag         uint64 `json:"wal_lag"`
	QueueDepths    []int  `json:"queue_depths"`
	QueueCap       int    `json:"queue_cap"`
	Ingested       uint64 `json:"ingested"`
	Dropped        uint64 `json:"dropped"`
}

// Health fetches and parses the server's health snapshot.
func (c *Conn) Health() (Health, error) {
	body, err := c.HealthJSON()
	if err != nil {
		return Health{}, err
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		return Health{}, fmt.Errorf("client: bad HEALTH reply: %w", err)
	}
	return h, nil
}

// HealthJSON fetches the health snapshot as the server's raw JSON —
// suitable for forwarding (the gateway's /readyz does exactly that).
func (c *Conn) HealthJSON() ([]byte, error) {
	resp, err := c.call("HEALTH format=json")
	if err != nil {
		return nil, err
	}
	return []byte(resp), nil
}

// Recover asks a degraded server to re-verify its WAL tail and resume
// mutations (the operator path out of fail-stop). On a healthy server
// it is a no-op; while the device still refuses writes it returns the
// coded "degraded" error with the cause.
func (c *Conn) Recover() error {
	_, err := c.call("RECOVER")
	return err
}

// Ping round-trips a liveness check.
func (c *Conn) Ping() error {
	resp, err := c.call("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("client: unexpected ping reply %q", resp)
	}
	return nil
}

// Publish sends one event for full evaluation, returning the number of
// deliveries it caused (0 when the server ingests through an async
// pipeline, where evaluation happens after the reply).
func (c *Conn) Publish(ev *Event) (int, error) {
	data, err := event.MarshalJSONEvent(ev)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(func() error { return c.tr.sendEvent(data) })
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(resp)
	if err != nil {
		return 0, fmt.Errorf("client: bad PUB reply %q", resp)
	}
	return n, nil
}

// PublishRaw publishes one event from its already-marshaled JSON —
// the proxy fast path (the HTTP gateway forwards request bodies
// without decoding them into Events first). The bytes are compacted so
// embedded newlines cannot break wire framing; the server validates
// the event itself.
func (c *Conn) PublishRaw(data []byte) (int, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		return 0, fmt.Errorf("client: bad event json: %w", err)
	}
	resp, err := c.roundTrip(func() error { return c.tr.sendEvent(buf.Bytes()) })
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(resp)
	if err != nil {
		return 0, fmt.Errorf("client: bad PUB reply %q", resp)
	}
	return n, nil
}

// PublishT publishes one event under an idempotency token: a session
// name (any token without spaces) and a strictly increasing sequence
// number within it. A republish of an already-ingested sequence — the
// ambiguous-outcome case after a connection died mid-reply — answers
// dup=true instead of duplicating the event. This is the primitive
// Retry's Publish builds on; the session ledger lives on the server
// and survives reconnects.
func (c *Conn) PublishT(session string, seq uint64, ev *Event) (delivered int, dup bool, err error) {
	if strings.ContainsAny(session, " \r\n") || session == "" {
		return 0, false, fmt.Errorf("client: bad session token %q", session)
	}
	data, err := event.MarshalJSONEvent(ev)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.call(fmt.Sprintf("PUBT %s %d %s", session, seq, data))
	if err != nil {
		return 0, false, err
	}
	fields := strings.Fields(resp)
	if len(fields) == 0 {
		return 0, false, fmt.Errorf("client: bad PUBT reply %q", resp)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false, fmt.Errorf("client: bad PUBT reply %q", resp)
	}
	return n, len(fields) > 1 && fields[1] == "dup", nil
}

// maxBatch mirrors the server's PUBB cap; larger batches are split
// transparently.
const maxBatch = 65536

// PublishBatch sends a batch of events in one round-trip (one per
// 65536-event chunk for oversized batches); the server ingests them
// through its sharded batch pipeline. Returns the number of events
// accepted.
func (c *Conn) PublishBatch(evs []*Event) (int, error) {
	total := 0
	for len(evs) > 0 {
		chunk := evs
		if len(chunk) > maxBatch {
			chunk = chunk[:maxBatch]
		}
		evs = evs[len(chunk):]
		n, err := c.publishChunk(chunk)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (c *Conn) publishChunk(evs []*Event) (int, error) {
	if len(evs) == 0 {
		return 0, nil
	}
	lines := make([]string, len(evs))
	for i, ev := range evs {
		data, err := event.MarshalJSONEvent(ev)
		if err != nil {
			return 0, fmt.Errorf("client: event %d: %w", i, err)
		}
		lines[i] = string(data)
	}
	resp, err := c.call(fmt.Sprintf("PUBB %d", len(evs)), lines...)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(resp)
	if err != nil {
		return 0, fmt.Errorf("client: bad PUBB reply %q", resp)
	}
	return n, nil
}

// Match asks which subscriptions stored in the server would receive
// the event, without delivering it.
func (c *Conn) Match(ev *Event) ([]string, error) {
	data, err := event.MarshalJSONEvent(ev)
	if err != nil {
		return nil, err
	}
	resp, err := c.call("MATCH " + string(data))
	if err != nil {
		return nil, err
	}
	if resp == "" {
		return nil, nil
	}
	return strings.Split(resp, ","), nil
}

// Subscription is a stream of pushed events. Receive from C; the
// channel closes when the subscription or connection closes.
type Subscription struct {
	// C delivers pushed events (matched events for Subscribe, updated
	// results for ContinuousQuery).
	C <-chan *Event

	id      string
	c       *Conn
	ch      chan *Event
	dropped atomic.Uint64
}

// ID returns the subscription's wire id.
func (s *Subscription) ID() string { return s.id }

// Dropped reports pushes discarded client-side because C's buffer was
// full when they arrived.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the server and closes C.
func (s *Subscription) Close() error {
	s.c.mu.Lock()
	if _, ok := s.c.subs[s.id]; !ok {
		s.c.mu.Unlock()
		return nil // already closed (or the connection died)
	}
	delete(s.c.subs, s.id)
	close(s.ch)
	s.c.mu.Unlock()
	_, err := s.c.call("UNSUB " + s.id)
	return err
}

// register installs a subscription before its wire command is sent, so
// no push can arrive unrouted, and removes it again if the command is
// refused.
func (c *Conn) register(id string, buffer int, send func() error) (*Subscription, error) {
	if strings.ContainsAny(id, " \r\n") || id == "" {
		return nil, fmt.Errorf("client: bad subscription id %q", id)
	}
	if buffer <= 0 {
		if c.subBuf > 0 {
			buffer = c.subBuf
		} else {
			buffer = 64
		}
	}
	s := &Subscription{id: id, c: c, ch: make(chan *Event, buffer)}
	s.C = s.ch
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.err
	}
	_, dupSub := c.subs[id]
	_, dupDur := c.durables[id]
	if dupSub || dupDur {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: subscription %q already exists", id)
	}
	c.subs[id] = s
	c.mu.Unlock()
	if err := send(); err != nil {
		c.mu.Lock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(s.ch)
		}
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Subscribe registers a predicate subscription on the server; events
// published on any connection that match filter are pushed to the
// returned Subscription's channel (buffered to buffer, default 64).
// The empty filter matches every event.
func (c *Conn) Subscribe(id, filter string, buffer int) (*Subscription, error) {
	if strings.ContainsAny(filter, "\r\n") {
		// A newline would smuggle extra protocol lines onto the wire.
		return nil, fmt.Errorf("client: filter must not contain newlines")
	}
	return c.register(id, buffer, func() error {
		_, err := c.call(strings.TrimRight("SUB "+id+" "+filter, " "))
		return err
	})
}

// ContinuousQuery attaches a standing windowed aggregation evaluated
// inside the server; each change to its result pushes an updated
// result event (type "cq.<id>") to the returned channel.
func (c *Conn) ContinuousQuery(id string, spec CQSpec, buffer int) (*Subscription, error) {
	spec.Name = id
	data, err := cq.MarshalSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.register(id, buffer, func() error {
		_, err := c.call("CQ " + id + " " + string(data))
		return err
	})
}

// Stats is a snapshot of the server-side state of this connection.
type Stats struct {
	// Sent is the number of lines (replies and pushes) the server has
	// written to this connection.
	Sent uint64
	// Dropped is the number of pushes the server discarded because
	// this connection's outbound queue was full (DropOnFull servers).
	Dropped uint64
	// Queued is the current depth of the server-side outbound queue.
	Queued int
	// Subs, CQs and QSubs count this connection's active
	// subscriptions, continuous queries and durable consumers.
	Subs, CQs, QSubs int
}

// Stats fetches the server-side counters for this connection.
func (c *Conn) Stats() (Stats, error) {
	resp, err := c.call("STATS")
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for _, field := range strings.Fields(resp) {
		key, v, ok := strings.Cut(field, "=")
		if !ok {
			return Stats{}, fmt.Errorf("client: bad STATS field %q", field)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return Stats{}, fmt.Errorf("client: bad STATS field %q", field)
		}
		switch key {
		case "sent":
			st.Sent = n
		case "dropped":
			st.Dropped = n
		case "queued":
			st.Queued = int(n)
		case "subs":
			st.Subs = int(n)
		case "cqs":
			st.CQs = int(n)
		case "qsubs":
			st.QSubs = int(n)
		}
	}
	return st, nil
}

// StatsJSON fetches the connection counters as the server's JSON form
// ("STATS format=json") — a single JSON object, raw bytes suitable for
// forwarding to dashboards or HTTP callers without re-encoding.
func (c *Conn) StatsJSON() ([]byte, error) {
	resp, err := c.call("STATS format=json")
	if err != nil {
		return nil, err
	}
	return []byte(resp), nil
}

// QueueStatsJSON fetches a durable queue's state counts as the
// server's JSON form ("QSTATS <name> format=json").
func (c *Conn) QueueStatsJSON(name string) ([]byte, error) {
	resp, err := c.call("QSTATS " + name + " format=json")
	if err != nil {
		return nil, err
	}
	return []byte(resp), nil
}
