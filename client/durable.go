package client

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Delivery is one message delivered from a durable queue subscription:
// the event plus the receipt handle that settles it. Acknowledge with
// Ack (deletes the message) or Nack (returns it for retry); a delivery
// that is neither settled nor held by a live connection goes back to
// the queue for redelivery — at-least-once, never silent loss.
type Delivery struct {
	// Event is the originally published event.
	Event *Event
	// Attempt is 1 for a first delivery, higher for redeliveries of
	// messages that were nacked or timed out unacknowledged. 0 for
	// historical replay deliveries.
	Attempt int
	// Historical marks a journal-backfill delivery (see
	// DurableSub.Replay): already-settled history, not ackable.
	Historical bool
	// LSN is the journal position of a historical delivery — feed the
	// final Replay nextLSN back in to resume a backfill.
	LSN uint64

	queue string
	token string
	c     *Conn
}

// Ack acknowledges the delivery, deleting the message from the queue.
// On auto-ack subscriptions and historical deliveries it is a no-op.
func (d Delivery) Ack() error {
	if d.token == "-" || d.c == nil {
		return nil
	}
	_, err := d.c.call("ACK " + d.queue + " " + d.token)
	return err
}

// Nack returns the delivery to the queue for redelivery after delay
// (the message dead-letters once its attempts exhaust). On auto-ack
// subscriptions and historical deliveries it is a no-op.
func (d Delivery) Nack(delay time.Duration) error {
	if d.token == "-" || d.c == nil {
		return nil
	}
	_, err := d.c.call(fmt.Sprintf("NACK %s %s %d", d.queue, d.token, delay.Milliseconds()))
	return err
}

// DurableOptions tune DurableSubscribe.
type DurableOptions struct {
	// AutoAck acknowledges each message server-side the moment it is
	// pushed, instead of waiting for Delivery.Ack — lower overhead,
	// but a message pushed to a dying connection is consumed, not
	// redelivered (at-most-once). Default false: manual ack,
	// at-least-once.
	AutoAck bool
	// Buffer sizes the delivery channel (default 256, matching the
	// server's default queue prefetch). A delivery that arrives to a
	// full channel is dropped client-side and counted (Dropped); a
	// dropped manual-ack delivery comes back after the server's
	// visibility timeout, but dropped auto-ack and Replay deliveries
	// are gone. Size Buffer at or above the server's queue prefetch —
	// and at or above the expected backfill when using Replay without
	// a concurrent drainer.
	Buffer int
}

// DurableSub is a durable queue subscription. Unlike Subscription,
// the server-side state it attaches to — the named queue, its staged
// messages, the filter binding — survives this connection, this
// process, and (on a -dir server) server restarts. Receive deliveries
// from C; to resume after a disconnect, dial a new connection and
// DurableSubscribe to the same name again.
type DurableSub struct {
	// C delivers staged messages and replayed history.
	C <-chan Delivery

	name    string
	c       *Conn
	ch      chan Delivery
	dropped atomic.Uint64
}

// Name returns the durable queue name.
func (s *DurableSub) Name() string { return s.name }

// Dropped reports deliveries discarded client-side because C's buffer
// was full when they arrived. Dropped manual-ack deliveries are
// redelivered by the server after its visibility timeout.
func (s *DurableSub) Dropped() uint64 { return s.dropped.Load() }

// Close detaches this consumer from the queue and closes C. The queue
// itself, its staged messages, and the filter binding stay live on the
// server: events keep accumulating for the next DurableSubscribe.
func (s *DurableSub) Close() error {
	s.c.mu.Lock()
	if _, ok := s.c.durables[s.name]; !ok {
		s.c.mu.Unlock()
		return nil // already closed (or the connection died)
	}
	delete(s.c.durables, s.name)
	close(s.ch)
	s.c.mu.Unlock()
	_, err := s.c.call("UNSUB " + s.name)
	return err
}

// Replay backfills history through the subscription: every message
// ever staged into the queue from WAL position fromLSN — including
// long-acknowledged ones — is streamed to C as a Historical delivery,
// all of them routed before Replay returns. It reports how many were
// replayed and the next LSN to resume from; periodically persisting
// that cursor gives a consumer the paper's hybrid historical+live
// consumption: replay the journal to catch up, then keep receiving
// live deliveries. Requires a durable (-dir) server.
//
// Drain C from another goroutine during the call (or give Buffer room
// for the whole backfill): historical deliveries that find C full are
// dropped and counted in Dropped — history, unlike unacked live
// deliveries, is not redelivered. Compare the returned count with
// what arrived, and re-Replay from the same cursor if they differ.
func (s *DurableSub) Replay(fromLSN uint64) (n int, nextLSN uint64, err error) {
	resp, err := s.c.call(fmt.Sprintf("REPLAY %s %d", s.name, fromLSN))
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(resp)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("client: bad REPLAY reply %q", resp)
	}
	n, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, fmt.Errorf("client: bad REPLAY reply %q", resp)
	}
	nextLSN, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("client: bad REPLAY reply %q", resp)
	}
	return n, nextLSN, nil
}

// DurableSubscribe attaches to the named durable queue: the server
// creates (or re-opens) the queue, binds filter-matching events into
// it, and starts pushing staged messages as deliveries on the returned
// channel. Reconnecting consumers re-attach to the same name and
// resume where their acks left off; multiple simultaneous consumers
// compete for messages (each is delivered to exactly one). A fresh
// attach with a different filter rebinds the queue — but only one
// DurableSubscribe per name may be open on a connection, so rebinding
// from the same connection means Close() first.
func (c *Conn) DurableSubscribe(name, filter string, opts DurableOptions) (*DurableSub, error) {
	if strings.ContainsAny(name, " \r\n") || name == "" {
		return nil, fmt.Errorf("client: bad queue name %q", name)
	}
	if strings.ContainsAny(filter, "\r\n") {
		return nil, fmt.Errorf("client: filter must not contain newlines")
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		if c.subBuf > 0 {
			buffer = c.subBuf
		} else {
			// Match the server's default prefetch: with the default
			// pairing the channel can absorb every delivery the server
			// will push ahead of acknowledgment, so nothing drops.
			buffer = 256
		}
	}
	mode := "manual"
	if opts.AutoAck {
		mode = "auto"
	}
	s := &DurableSub{name: name, c: c, ch: make(chan Delivery, buffer)}
	s.C = s.ch
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.err
	}
	_, dupSub := c.subs[name]
	_, dupDur := c.durables[name]
	if dupSub || dupDur {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: subscription %q already exists", name)
	}
	if _, busy := c.consumers[name]; busy {
		// The mirror of Consume's guard: a collector in flight would
		// swallow this subscription's pushes.
		c.mu.Unlock()
		return nil, fmt.Errorf("client: queue %q has a Consume in flight on this connection", name)
	}
	c.durables[name] = s
	c.mu.Unlock()
	// The QSUB command goes out only after the route is installed, so
	// no delivery can arrive unrouted; roll back if the server refuses.
	if _, err := c.call("QSUB " + name + " " + mode + " " + filter); err != nil {
		c.mu.Lock()
		if _, ok := c.durables[name]; ok {
			delete(c.durables, name)
			close(s.ch)
		}
		c.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Consume pulls up to max ready messages from a durable queue in one
// round trip — the polling alternative to DurableSubscribe's push
// delivery. Deliveries are always manual-ack. The queue must already
// exist (a prior QSUB, from any connection or process incarnation).
// Consume cannot be mixed with an open DurableSubscribe for the same
// queue on the same connection.
func (c *Conn) Consume(name string, max int) ([]Delivery, error) {
	if strings.ContainsAny(name, " \r\n") || name == "" {
		return nil, fmt.Errorf("client: bad queue name %q", name)
	}
	if max <= 0 {
		return nil, fmt.Errorf("client: max must be positive")
	}
	ch := make(chan Delivery, max)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.err
	}
	if _, ok := c.durables[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: queue %q has an open DurableSubscribe on this connection", name)
	}
	if _, ok := c.consumers[name]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: concurrent Consume on queue %q", name)
	}
	c.consumers[name] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.consumers, name)
		c.mu.Unlock()
	}()
	resp, err := c.call(fmt.Sprintf("CONSUME %s %d", name, max))
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(resp))
	if err != nil {
		return nil, fmt.Errorf("client: bad CONSUME reply %q", resp)
	}
	// The n QEVT lines were queued behind the reply, so they are
	// already on the wire; the read loop routes them here.
	out := make([]Delivery, 0, n)
	for len(out) < n {
		select {
		case d := <-ch:
			out = append(out, d)
		case <-c.done:
			return out, c.err
		}
	}
	return out, nil
}

// QueueStats is a snapshot of a durable queue's contents.
type QueueStats struct {
	// Ready counts messages awaiting delivery.
	Ready int
	// Inflight counts delivered, unacknowledged messages.
	Inflight int
	// Dead counts dead-lettered messages (attempts exhausted).
	Dead int
	// Outstanding counts this connection's own unacknowledged
	// deliveries.
	Outstanding int
}

// QueueStats fetches a durable queue's state counts.
func (c *Conn) QueueStats(name string) (QueueStats, error) {
	resp, err := c.call("QSTATS " + name)
	if err != nil {
		return QueueStats{}, err
	}
	var st QueueStats
	for _, field := range strings.Fields(resp) {
		key, v, ok := strings.Cut(field, "=")
		if !ok {
			return QueueStats{}, fmt.Errorf("client: bad QSTATS field %q", field)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return QueueStats{}, fmt.Errorf("client: bad QSTATS field %q", field)
		}
		switch key {
		case "ready":
			st.Ready = n
		case "inflight":
			st.Inflight = n
		case "dead":
			st.Dead = n
		case "outstanding":
			st.Outstanding = n
		}
	}
	return st, nil
}

// routeDelivery hands one parsed QEVT line to the matching Consume
// collector or durable subscription. Caller holds c.mu.
func (c *Conn) routeDelivery(name string, d Delivery) {
	if ch, ok := c.consumers[name]; ok {
		select {
		case ch <- d:
		default: // collector full (server overdelivered); fall through
		}
		return
	}
	if s, ok := c.durables[name]; ok {
		select {
		case s.ch <- d:
		default:
			s.dropped.Add(1)
		}
	}
}
