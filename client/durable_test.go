package client_test

import (
	"testing"
	"time"

	"eventdb/client"
	"eventdb/internal/core"
	"eventdb/internal/server"
)

func startDurableServer(t *testing.T, dir string) *server.Server {
	t.Helper()
	eng, err := core.Open(core.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := server.Start(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func recvDelivery(t *testing.T, sub *client.DurableSub) client.Delivery {
	t.Helper()
	select {
	case d, ok := <-sub.C:
		if !ok {
			t.Fatal("delivery channel closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	return client.Delivery{}
}

func TestDurableSubscribeAckNack(t *testing.T) {
	srv := startServer(t)
	pub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ds, err := sub.DurableSubscribe("orders", "qty >= 10", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(client.NewEvent("order", map[string]any{"qty": 5})); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(client.NewEvent("order", map[string]any{"qty": 50})); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, ds)
	if v, _ := d.Event.Get("qty"); v.String() != "50" {
		t.Fatalf("delivered qty = %v, want the matching event only", v)
	}
	if d.Attempt != 1 || d.Historical {
		t.Fatalf("delivery = %+v", d)
	}
	// Nack → redelivery with the attempt bumped; then ack for good.
	if err := d.Nack(0); err != nil {
		t.Fatal(err)
	}
	d2 := recvDelivery(t, ds)
	if d2.Attempt != 2 {
		t.Errorf("redelivery attempt = %d, want 2", d2.Attempt)
	}
	if err := d2.Ack(); err != nil {
		t.Fatal(err)
	}
	st, err := sub.QueueStats("orders")
	if err != nil {
		t.Fatal(err)
	}
	if st != (client.QueueStats{}) {
		t.Errorf("queue stats = %+v, want empty", st)
	}
	// The connection's STATS counts the durable consumer.
	cs, err := sub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if cs.QSubs != 1 {
		t.Errorf("stats qsubs = %d", cs.QSubs)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ds.C; ok {
		t.Error("channel open after Close")
	}
}

// TestDurableResumeAfterReconnect is the tentpole flow at client
// level: deliveries in flight when a connection dies are redelivered
// to the next consumer that attaches to the same queue name.
func TestDurableResumeAfterReconnect(t *testing.T) {
	srv := startServer(t)
	pub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	c1, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ds1, err := c1.DurableSubscribe("jobs", "", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const published = 6
	for i := 0; i < published; i++ {
		if _, err := pub.Publish(client.NewEvent("job", map[string]any{"n": i})); err != nil {
			t.Fatal(err)
		}
	}
	received := map[uint64]bool{}
	// Process (ack) half, then crash with the rest unacked.
	for i := 0; i < published; i++ {
		d := recvDelivery(t, ds1)
		if i < published/2 {
			if err := d.Ack(); err != nil {
				t.Fatal(err)
			}
			received[uint64(d.Event.ID)] = true
		}
	}
	c1.Close() // crash: 3 deliveries vanish unacked

	c2, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ds2, err := c2.DurableSubscribe("jobs", "", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	redelivered := map[uint64]bool{}
	for i := 0; i < published-published/2; i++ {
		d := recvDelivery(t, ds2)
		if received[uint64(d.Event.ID)] {
			t.Errorf("acked event %d delivered again", uint64(d.Event.ID))
		}
		redelivered[uint64(d.Event.ID)] = true
		if err := d.Ack(); err != nil {
			t.Fatal(err)
		}
	}
	// received ∪ redelivered == published, no loss, no double-ack.
	if len(received)+len(redelivered) != published {
		t.Errorf("received %d + redelivered %d != published %d",
			len(received), len(redelivered), published)
	}
	st, err := c2.QueueStats("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready != 0 || st.Inflight != 0 {
		t.Errorf("queue not drained: %+v", st)
	}
}

func TestAutoAckDurableSubscribe(t *testing.T) {
	srv := startServer(t)
	pub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ds, err := sub.DurableSubscribe("fire", "", client.DurableOptions{AutoAck: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(client.NewEvent("e", map[string]any{"n": 1})); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, ds)
	// Ack/Nack are no-ops on auto-ack deliveries.
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
	if err := d.Nack(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := sub.QueueStats("fire")
		if err != nil {
			t.Fatal(err)
		}
		if st == (client.QueueStats{}) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-ack never settled: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConsumePull(t *testing.T) {
	srv := startServer(t)
	pub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Bind the queue, then close the push consumer: messages keep
	// accumulating for the puller.
	binder, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := binder.DurableSubscribe("batch", "", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	binder.Close()
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(client.NewEvent("e", map[string]any{"n": i})); err != nil {
			t.Fatal(err)
		}
	}
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds2, err := c.DurableSubscribe("batch", "", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Consume conflicts with an open DurableSubscribe on the same conn.
	if _, err := c.Consume("batch", 3); err == nil {
		t.Fatal("Consume alongside DurableSubscribe succeeded")
	}
	// Drain what the push consumer grabbed, then close it and pull.
	var pulled []client.Delivery
	seen := 0
	for seen < 5 {
		select {
		case d := <-ds2.C:
			seen++
			if err := d.Nack(0); err != nil { // hand back for the puller
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled at %d of 5", seen)
		}
	}
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
	for len(pulled) < 5 {
		ds, err := c.Consume("batch", 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if err := d.Ack(); err != nil {
				t.Fatal(err)
			}
		}
		pulled = append(pulled, ds...)
	}
	if len(pulled) != 5 {
		t.Fatalf("pulled %d, want 5", len(pulled))
	}
}

func TestReplayBackfillClient(t *testing.T) {
	srv := startDurableServer(t, t.TempDir())
	pub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ds, err := sub.DurableSubscribe("hist", "n >= 0", client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const published = 4
	for i := 0; i < published; i++ {
		if _, err := pub.Publish(client.NewEvent("e", map[string]any{"n": i})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < published; i++ {
		if err := recvDelivery(t, ds).Ack(); err != nil {
			t.Fatal(err)
		}
	}
	// Everything is consumed — yet Replay resurrects the full history
	// from the journal.
	n, next, err := ds.Replay(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != published {
		t.Fatalf("replayed %d, want %d", n, published)
	}
	if next == 0 {
		t.Fatal("next LSN = 0")
	}
	seen := map[int64]bool{}
	var lastLSN uint64
	for i := 0; i < published; i++ {
		d := recvDelivery(t, ds)
		if !d.Historical || d.Attempt != 0 {
			t.Fatalf("replay delivery = %+v", d)
		}
		if d.LSN < lastLSN {
			t.Errorf("replay out of order: %d after %d", d.LSN, lastLSN)
		}
		lastLSN = d.LSN
		if err := d.Ack(); err != nil { // no-op on historical
			t.Fatal(err)
		}
		v, _ := d.Event.Get("n")
		nv, _ := v.AsInt()
		seen[nv] = true
	}
	if len(seen) != published {
		t.Errorf("replayed %d distinct events, want %d", len(seen), published)
	}
	// Resuming from the cursor replays nothing.
	if n, _, err := ds.Replay(next); err != nil || n != 0 {
		t.Errorf("resume replay = %d, %v", n, err)
	}
}
