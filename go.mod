module eventdb

go 1.21
