package eventdb

// End-to-end failover test: the acceptance flow for WAL-shipping
// replication. A publisher drives events through a leader into a
// durable subscription; a follower replicates the WAL over the wire —
// through a connection that is killed at a scripted LSN and must
// resume — until it mirrors the leader. The leader then dies, the
// follower promotes, and the consumer reconnects to it: every
// published event is either already acked or redelivered by the new
// leader. Nothing is lost, nothing is invented.

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"eventdb/client"
	"eventdb/internal/core"
	"eventdb/internal/queue"
	"eventdb/internal/repl"
	"eventdb/internal/server"
	"eventdb/internal/testnet"
	"eventdb/internal/workload"
)

func TestFailoverPromoteResumesDurableConsumer(t *testing.T) {
	// Leader: the eventdbd durable arrangement.
	leng, err := core.Open(core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	leng.Broker.PersistOnlyQueueSubs(true)
	if err := leng.Broker.AttachStore(leng.DB, "wire_subs", leng.Queues, queue.Config{}, nil); err != nil {
		t.Fatal(err)
	}
	lsrv, err := server.StartConfig(leng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	leaderUp := true
	defer func() {
		if leaderUp {
			lsrv.Close()
			leng.Close()
		}
	}()

	// Follower: replicates through a first connection that dies at a
	// scripted LSN, proving mid-stream reconnect-resume on the way.
	feng, err := core.Open(core.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer feng.Close()
	var dials atomic.Int64
	f, err := repl.Start(repl.Config{
		Addr:   lsrv.Addr(),
		Engine: feng,
		Logf:   t.Logf,
		OnPromote: func() {
			feng.Broker.PersistOnlyQueueSubs(true)
			if err := feng.Broker.AttachStore(feng.DB, "wire_subs", feng.Queues, queue.Config{}, nil); err != nil {
				t.Errorf("re-attach on promote: %v", err)
			}
		},
		Dial: func(addr string) (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				fc := testnet.Wrap(nc)
				fc.KillAtLSN("REPL", 12) // sever the first stream mid-history
				return fc, nil
			}
			return nc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A durable consumer and a publisher, both on the leader.
	consumer, err := client.Dial(lsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const filter = "qty >= 500"
	ds, err := consumer.DurableSubscribe("big-orders", filter, client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := client.Dial(lsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewTrades(23, 8, 1000)
	published := map[uint64]bool{}
	for len(published) < 20 {
		ev := gen.Next()
		if _, err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
		if v, ok := ev.Get("qty"); ok {
			if q, _ := v.AsInt(); q >= 500 {
				published[uint64(ev.ID)] = true
			}
		}
	}
	pub.Close()

	// Receive everything, ack only the first half: the unacked half is
	// the failover's redelivery obligation.
	acked := map[uint64]bool{}
	for i := 0; i < len(published); i++ {
		select {
		case d := <-ds.C:
			if len(acked) < len(published)/2 {
				if err := d.Ack(); err != nil {
					t.Fatal(err)
				}
				acked[uint64(d.Event.ID)] = true
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("leader delivery stalled at %d/%d", i, len(published))
		}
	}

	// The follower must fully mirror the leader — including the acks —
	// before the leader is allowed to die.
	target := leng.DB.WAL().NextLSN()
	if !f.WaitCursor(target, 15*time.Second) {
		t.Fatalf("follower cursor %d never reached leader end %d", f.Cursor(), target)
	}
	if dials.Load() < 2 {
		t.Fatalf("replication stream was never killed+resumed (dials=%d)", dials.Load())
	}

	// Leader dies. Consumer's connection dies with it.
	consumer.Close()
	lsrv.Close()
	leng.Close()
	leaderUp = false

	// Failover: promote the follower and serve from it.
	role, err := f.Promote()
	if err != nil || role != "leader" {
		t.Fatalf("Promote = (%q, %v)", role, err)
	}
	fsrv, err := server.StartConfig(feng, "127.0.0.1:0", server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fsrv.Close()

	// The consumer reconnects to the new leader and resumes: every
	// unacked event redelivers from the replicated queue state.
	c2, err := client.Dial(fsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ds2, err := c2.DurableSubscribe("big-orders", filter, client.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	redelivered := map[uint64]bool{}
	want := len(published) - len(acked)
	for len(redelivered) < want {
		select {
		case d := <-ds2.C:
			id := uint64(d.Event.ID)
			if !published[id] {
				t.Fatalf("new leader invented event %d", id)
			}
			if err := d.Ack(); err != nil {
				t.Fatal(err)
			}
			redelivered[id] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("failover redelivery stalled at %d/%d (acked %d, published %d)",
				len(redelivered), want, len(acked), len(published))
		}
	}
	// received ∪ redelivered == published: no event lost to failover,
	// and nothing acked on the old leader was re-invented on the new.
	for id := range published {
		if !acked[id] && !redelivered[id] {
			t.Errorf("event %d lost in failover", id)
		}
	}
	for id := range redelivered {
		if acked[id] {
			t.Errorf("event %d was acked on the old leader but redelivered", id)
		}
	}

	// The promoted leader accepts new writes end to end.
	pub2, err := client.Dial(fsrv.Addr(), client.RequireLeader())
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	for len(published) < 24 {
		ev := gen.Next()
		if _, err := pub2.Publish(ev); err != nil {
			t.Fatal(err)
		}
		if v, ok := ev.Get("qty"); ok {
			if q, _ := v.AsInt(); q >= 500 {
				published[uint64(ev.ID)] = true
			}
		}
	}
}
