package eventdb

import (
	"testing"

	"eventdb/internal/pubsub"
	"eventdb/internal/val"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow end
// to end through the root package only.
func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var ruleFired, notified int
	if err := eng.AddRule("hot", "temp > 30", 0, func(*Event, *Rule) { ruleFired++ }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Subscribe("s", "ops", "temp > 25", func(pubsub.Delivery) { notified++ }); err != nil {
		t.Fatal(err)
	}
	for _, temp := range []float64{20, 28, 35} {
		if err := eng.Ingest(NewEvent("reading", map[string]any{"temp": temp})); err != nil {
			t.Fatal(err)
		}
	}
	if ruleFired != 1 || notified != 2 {
		t.Errorf("fired=%d notified=%d", ruleFired, notified)
	}
}

func TestPublicAPITableCapture(t *testing.T) {
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	schema, err := NewSchema("things", []Column{
		{Name: "name", Kind: val.KindString, NotNull: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DB.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	var captured int
	eng.Subscribe("cap", "x", "$type = 'db.things.insert'", func(pubsub.Delivery) { captured++ })
	if err := eng.CaptureTable("things"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DB.Insert("things", map[string]val.Value{"name": val.String("a")}); err != nil {
		t.Fatal(err)
	}
	if captured != 1 {
		t.Errorf("captured = %d", captured)
	}
}

func TestPublicAPIQueueFlow(t *testing.T) {
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.CreateQueue("out", QueueConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SubscribeQueue("s", "ops", "sev >= 3", "out", 0); err != nil {
		t.Fatal(err)
	}
	eng.Ingest(NewEvent("alarm", map[string]any{"sev": 5}))
	q, _ := eng.Queues.Get("out")
	msg, ok, err := q.Dequeue("ops")
	if err != nil || !ok {
		t.Fatalf("dequeue: %v %v", ok, err)
	}
	if v, _ := msg.Event.Get("sev"); !val.Equal(v, val.Int(5)) {
		t.Errorf("sev = %v", v)
	}
	if err := q.Ack(msg.Receipt); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIWatchQuery(t *testing.T) {
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	schema, _ := NewSchema("inventory", []Column{
		{Name: "sku", Kind: val.KindString, NotNull: true},
		{Name: "count", Kind: val.KindInt, NotNull: true},
	}, "sku")
	eng.DB.CreateTable(schema)
	var lowStock int
	eng.Subscribe("low", "x", "$type = 'query.low.added'", func(pubsub.Delivery) { lowStock++ })
	w := eng.WatchQuery("low", Query("inventory").Where("count < 10").Select("sku", "count"), "sku")
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	id, _ := eng.DB.Insert("inventory", map[string]val.Value{
		"sku": val.String("widget"), "count": val.Int(100),
	})
	w.Poll()
	if lowStock != 0 {
		t.Error("well-stocked item flagged")
	}
	eng.DB.UpdateRow("inventory", id, map[string]val.Value{"count": val.Int(3)})
	if _, err := w.Poll(); err != nil {
		t.Fatal(err)
	}
	if lowStock != 1 {
		t.Errorf("lowStock = %d", lowStock)
	}
}
